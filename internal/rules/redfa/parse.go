package redfa

import (
	"fmt"
)

// The regex subset the verifier compiles. It is byte-oriented (a class
// matches bytes, not runes) and deliberately small — the verifier only
// ever runs anchored at a literal-hit window, so the exotic PCRE
// machinery (backreferences, lookaround, captures) that cannot be
// compiled to a DFA is rejected at parse time, never emulated:
//
//	literal bytes            abc
//	any byte                 .            (matches newline too: input is payload, not text)
//	escapes                  \n \r \t \f \v \a \xHH \d \D \w \W \s \S and \<punct>
//	classes                  [a-z0-9_] [^\r\n]
//	alternation              a|b
//	grouping                 (ab)+ (?:ab)+   (both are non-capturing)
//	quantifiers              * + ? {n} {n,} {n,m}   (m capped at MaxRepeat)
//	anchor                   ^ only as the first character (redundant: the
//	                         verifier is always anchored); $ is rejected
//
// Flags (from the rule syntax's /expr/flags): `i` folds ASCII case into
// every literal and class, `s` is accepted and ignored (dot already
// matches any byte), `R` (Snort's relative flag) is accepted and
// ignored (every verification is relative to its anchor). Anything
// else is a parse error.

// MaxRepeat bounds {n,m} counted repetition, so a hostile rule cannot
// inflate the NFA quadratically.
const MaxRepeat = 64

// maxNFAStates bounds the compiled automaton size; Compile fails above
// it rather than building an arbitrarily large program.
const maxNFAStates = 4096

// parser holds the recursive-descent state over the expression text.
type parser struct {
	src      string
	pos      int
	fold     bool // expand ASCII case in literals and classes
	p        *Prog
	lastAtom span // source range of the last atom, for {n,m} re-parsing
}

// frag is a partially built NFA fragment: a start state and a list of
// dangling arrows (state indexes whose eps slot 1 is unfilled, encoded
// as state index) waiting to be patched to the next fragment.
type frag struct {
	start int32
	out   []int32 // states whose next-pointer patches to the following fragment
}

func (ps *parser) errf(format string, args ...any) error {
	return fmt.Errorf("redfa: pos %d: "+format, append([]any{ps.pos}, args...)...)
}

// newState appends an NFA state and returns its index.
func (ps *parser) newState(st nstate) (int32, error) {
	if len(ps.p.states) >= maxNFAStates {
		return 0, fmt.Errorf("redfa: program exceeds %d states", maxNFAStates)
	}
	ps.p.states = append(ps.p.states, st)
	return int32(len(ps.p.states) - 1), nil
}

// parse compiles the whole expression into ps.p.
func (ps *parser) parse() error {
	if len(ps.src) > 0 && ps.src[0] == '^' {
		ps.pos++ // the verifier is anchored anyway
	}
	f, err := ps.alt()
	if err != nil {
		return err
	}
	if ps.pos != len(ps.src) {
		return ps.errf("unexpected %q", ps.src[ps.pos])
	}
	acc, err := ps.newState(nstate{accept: true})
	if err != nil {
		return err
	}
	ps.patch(f.out, acc)
	ps.p.start = f.start
	return nil
}

// patch points every dangling arrow in out at target.
func (ps *parser) patch(out []int32, target int32) {
	for _, s := range out {
		st := &ps.p.states[s]
		for i, e := range st.eps {
			if e == unpatched {
				st.eps[i] = target
				break
			}
		}
	}
}

// alt = concat ('|' concat)*
func (ps *parser) alt() (frag, error) {
	f, err := ps.concat()
	if err != nil {
		return frag{}, err
	}
	for ps.pos < len(ps.src) && ps.src[ps.pos] == '|' {
		ps.pos++
		g, err := ps.concat()
		if err != nil {
			return frag{}, err
		}
		split, err := ps.newState(nstate{eps: []int32{f.start, g.start}})
		if err != nil {
			return frag{}, err
		}
		f = frag{start: split, out: append(f.out, g.out...)}
	}
	return f, nil
}

// concat = repeat*
func (ps *parser) concat() (frag, error) {
	var f *frag
	for ps.pos < len(ps.src) {
		c := ps.src[ps.pos]
		if c == '|' || c == ')' {
			break
		}
		g, err := ps.repeat()
		if err != nil {
			return frag{}, err
		}
		if f == nil {
			f = &g
		} else {
			ps.patch(f.out, g.start)
			f.out = g.out
		}
	}
	if f == nil {
		// Empty expression (or empty alternative): one epsilon pass-through.
		s, err := ps.newState(nstate{eps: []int32{unpatched}})
		if err != nil {
			return frag{}, err
		}
		return frag{start: s, out: []int32{s}}, nil
	}
	return *f, nil
}

// repeat = atom ('*' | '+' | '?' | '{n,m}')?
func (ps *parser) repeat() (frag, error) {
	f, err := ps.atom()
	if err != nil {
		return frag{}, err
	}
	if ps.pos >= len(ps.src) {
		return f, nil
	}
	switch ps.src[ps.pos] {
	case '*':
		ps.pos++
		return ps.star(f)
	case '+':
		ps.pos++
		// a+ = a a*
		g, err := ps.star(f)
		if err != nil {
			return frag{}, err
		}
		return frag{start: f.start, out: g.out}, nil
	case '?':
		ps.pos++
		return ps.opt(f)
	case '{':
		return ps.counted(f)
	}
	return f, nil
}

// star wraps f in a zero-or-more loop.
func (ps *parser) star(f frag) (frag, error) {
	split, err := ps.newState(nstate{eps: []int32{f.start, unpatched}})
	if err != nil {
		return frag{}, err
	}
	ps.patch(f.out, split)
	return frag{start: split, out: []int32{split}}, nil
}

// opt makes f optional.
func (ps *parser) opt(f frag) (frag, error) {
	split, err := ps.newState(nstate{eps: []int32{f.start, unpatched}})
	if err != nil {
		return frag{}, err
	}
	return frag{start: split, out: append(f.out, split)}, nil
}

// counted expands a{n,m} by re-parsing the atom's source text n..m
// times. Repetition counts are capped by MaxRepeat.
func (ps *parser) counted(f frag) (frag, error) {
	// The atom just parsed spans [atomStart, '{'), but fragments are not
	// trivially cloneable (the dangling lists alias states), so counted
	// repetition re-parses the source span. Find it by scanning back is
	// fragile; instead repeat() records it — see atomSpan.
	lo, hi, err := ps.parseBounds()
	if err != nil {
		return frag{}, err
	}
	span := ps.lastAtom
	if span.from >= span.to {
		return frag{}, ps.errf("nothing to repeat")
	}
	// Build: atom{lo} then (atom?){hi-lo}, or atom{lo} atom* for open m.
	build := func() (frag, error) {
		sub := &parser{src: ps.src[span.from:span.to], fold: ps.fold, p: ps.p}
		g, err := sub.alt()
		if err != nil {
			return frag{}, err
		}
		if sub.pos != len(sub.src) {
			return frag{}, ps.errf("bad repetition atom")
		}
		return g, nil
	}
	cur := f
	// f is the first copy; chain lo-1 more mandatory copies.
	for i := 1; i < lo; i++ {
		g, err := build()
		if err != nil {
			return frag{}, err
		}
		ps.patch(cur.out, g.start)
		cur = frag{start: cur.start, out: g.out}
	}
	if lo == 0 {
		if hi < 0 {
			return ps.star(f) // {0,} = *
		}
		if hi == 0 {
			// a{0} matches the empty string only; the parsed fragment is
			// discarded (its states stay allocated but unreachable). Its
			// dangling outs still need a target: the serializer rejects
			// unpatched transitions even in unreachable states.
			s, err := ps.newState(nstate{eps: []int32{unpatched}})
			if err != nil {
				return frag{}, err
			}
			ps.patch(f.out, s)
			return frag{start: s, out: []int32{s}}, nil
		}
		o, err := ps.opt(f)
		if err != nil {
			return frag{}, err
		}
		cur = o
		lo = 1 // first copy placed (optional); remaining copies below
	}
	if hi < 0 {
		g, err := build()
		if err != nil {
			return frag{}, err
		}
		s, err := ps.star(g)
		if err != nil {
			return frag{}, err
		}
		ps.patch(cur.out, s.start)
		return frag{start: cur.start, out: s.out}, nil
	}
	for i := lo; i < hi; i++ {
		g, err := build()
		if err != nil {
			return frag{}, err
		}
		o, err := ps.opt(g)
		if err != nil {
			return frag{}, err
		}
		ps.patch(cur.out, o.start)
		cur = frag{start: cur.start, out: o.out}
	}
	return cur, nil
}

// parseBounds reads {n}, {n,}, or {n,m} starting at '{'.
func (ps *parser) parseBounds() (lo, hi int, err error) {
	ps.pos++ // '{'
	lo, ok := ps.number()
	if !ok {
		return 0, 0, ps.errf("bad repetition count")
	}
	hi = lo
	if ps.pos < len(ps.src) && ps.src[ps.pos] == ',' {
		ps.pos++
		if ps.pos < len(ps.src) && ps.src[ps.pos] == '}' {
			hi = -1
		} else if hi, ok = ps.number(); !ok {
			return 0, 0, ps.errf("bad repetition bound")
		}
	}
	if ps.pos >= len(ps.src) || ps.src[ps.pos] != '}' {
		return 0, 0, ps.errf("unterminated repetition")
	}
	ps.pos++
	if lo > MaxRepeat || hi > MaxRepeat {
		return 0, 0, fmt.Errorf("redfa: repetition exceeds {%d}", MaxRepeat)
	}
	if hi >= 0 && hi < lo {
		return 0, 0, ps.errf("repetition bounds out of order")
	}
	return lo, hi, nil
}

func (ps *parser) number() (int, bool) {
	start := ps.pos
	n := 0
	for ps.pos < len(ps.src) && ps.src[ps.pos] >= '0' && ps.src[ps.pos] <= '9' {
		n = n*10 + int(ps.src[ps.pos]-'0')
		if n > 1<<20 {
			return 0, false
		}
		ps.pos++
	}
	return n, ps.pos > start
}

// span marks a source range (for counted-repetition re-parsing).
type span struct{ from, to int }

// atom = '(' alt ')' | '(?:' alt ')' | class | '.' | escape | literal
func (ps *parser) atom() (frag, error) {
	from := ps.pos
	f, err := ps.atomInner()
	if err != nil {
		return frag{}, err
	}
	ps.lastAtom = span{from: from, to: ps.pos}
	return f, nil
}

func (ps *parser) atomInner() (frag, error) {
	if ps.pos >= len(ps.src) {
		return frag{}, ps.errf("unexpected end of expression")
	}
	c := ps.src[ps.pos]
	switch c {
	case '(':
		ps.pos++
		if ps.pos+1 < len(ps.src) && ps.src[ps.pos] == '?' {
			if ps.src[ps.pos+1] != ':' {
				return frag{}, ps.errf("unsupported (?%c...) group", ps.src[ps.pos+1])
			}
			ps.pos += 2
		}
		f, err := ps.alt()
		if err != nil {
			return frag{}, err
		}
		if ps.pos >= len(ps.src) || ps.src[ps.pos] != ')' {
			return frag{}, ps.errf("unterminated group")
		}
		ps.pos++
		return f, nil
	case ')':
		return frag{}, ps.errf("unmatched )")
	case '[':
		set, err := ps.class()
		if err != nil {
			return frag{}, err
		}
		return ps.classFrag(set)
	case '.':
		ps.pos++
		var set byteSet
		set.addRange(0, 0xFF)
		return ps.classFrag(set)
	case '^', '$':
		return frag{}, ps.errf("anchor %q only allowed at the start", c)
	case '*', '+', '?':
		return frag{}, ps.errf("nothing to repeat before %q", c)
	case '{':
		return frag{}, ps.errf("repetition without atom")
	case '\\':
		set, lit, err := ps.escape()
		if err != nil {
			return frag{}, err
		}
		if lit >= 0 {
			return ps.literalFrag(byte(lit))
		}
		return ps.classFrag(set)
	default:
		ps.pos++
		return ps.literalFrag(c)
	}
}

// literalFrag builds a single-byte consuming state (folded when /i).
func (ps *parser) literalFrag(b byte) (frag, error) {
	var set byteSet
	set.add(b)
	if ps.fold {
		set.fold()
	}
	return ps.classFrag(set)
}

// classFrag builds one consuming state over the byte set.
func (ps *parser) classFrag(set byteSet) (frag, error) {
	s, err := ps.newState(nstate{arcs: set.ranges(), eps: []int32{unpatched}})
	if err != nil {
		return frag{}, err
	}
	return frag{start: s, out: []int32{s}}, nil
}

// class parses [...] starting at '['.
func (ps *parser) class() (byteSet, error) {
	var set byteSet
	ps.pos++ // '['
	negate := false
	if ps.pos < len(ps.src) && ps.src[ps.pos] == '^' {
		negate = true
		ps.pos++
	}
	first := true
	for {
		if ps.pos >= len(ps.src) {
			return set, ps.errf("unterminated class")
		}
		c := ps.src[ps.pos]
		if c == ']' && !first {
			ps.pos++
			break
		}
		first = false
		var lo byte
		switch c {
		case '\\':
			sub, lit, err := ps.escape()
			if err != nil {
				return set, err
			}
			if lit < 0 {
				set.or(sub)
				continue
			}
			lo = byte(lit)
		default:
			ps.pos++
			lo = c
		}
		// Range lo-hi?
		if ps.pos+1 < len(ps.src) && ps.src[ps.pos] == '-' && ps.src[ps.pos+1] != ']' {
			ps.pos++
			hc := ps.src[ps.pos]
			var hi byte
			if hc == '\\' {
				_, lit, err := ps.escape()
				if err != nil {
					return set, err
				}
				if lit < 0 {
					return set, ps.errf("class escape cannot end a range")
				}
				hi = byte(lit)
			} else {
				ps.pos++
				hi = hc
			}
			if hi < lo {
				return set, ps.errf("class range out of order")
			}
			set.addRange(lo, hi)
		} else {
			set.add(lo)
		}
	}
	if ps.fold {
		set.fold()
	}
	if negate {
		set.negate()
	}
	return set, nil
}

// escape parses one backslash escape starting at '\\'. It returns
// either a literal byte (lit >= 0) or a predefined class (lit < 0).
func (ps *parser) escape() (byteSet, int, error) {
	var set byteSet
	ps.pos++ // '\\'
	if ps.pos >= len(ps.src) {
		return set, 0, ps.errf("dangling escape")
	}
	c := ps.src[ps.pos]
	ps.pos++
	switch c {
	case 'n':
		return set, '\n', nil
	case 'r':
		return set, '\r', nil
	case 't':
		return set, '\t', nil
	case 'f':
		return set, '\f', nil
	case 'v':
		return set, '\v', nil
	case 'a':
		return set, 7, nil
	case '0':
		return set, 0, nil
	case 'x':
		if ps.pos+1 >= len(ps.src) {
			return set, 0, ps.errf("truncated \\x escape")
		}
		h1, ok1 := hexVal(ps.src[ps.pos])
		h2, ok2 := hexVal(ps.src[ps.pos+1])
		if !ok1 || !ok2 {
			return set, 0, ps.errf("bad \\x escape")
		}
		ps.pos += 2
		return set, int(h1<<4 | h2), nil
	case 'd':
		set.addRange('0', '9')
		return set, -1, nil
	case 'D':
		set.addRange('0', '9')
		set.negate()
		return set, -1, nil
	case 'w':
		set.addRange('a', 'z')
		set.addRange('A', 'Z')
		set.addRange('0', '9')
		set.add('_')
		return set, -1, nil
	case 'W':
		set.addRange('a', 'z')
		set.addRange('A', 'Z')
		set.addRange('0', '9')
		set.add('_')
		set.negate()
		return set, -1, nil
	case 's':
		for _, b := range []byte{' ', '\t', '\n', '\r', '\f', '\v'} {
			set.add(b)
		}
		return set, -1, nil
	case 'S':
		for _, b := range []byte{' ', '\t', '\n', '\r', '\f', '\v'} {
			set.add(b)
		}
		set.negate()
		return set, -1, nil
	}
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
		return set, 0, ps.errf("unknown escape \\%c", c)
	}
	return set, int(c), nil // escaped punctuation is the literal byte
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// byteSet is a 256-bit set of bytes.
type byteSet [4]uint64

func (s *byteSet) add(b byte)      { s[b>>6] |= 1 << (b & 63) }
func (s *byteSet) has(b byte) bool { return s[b>>6]&(1<<(b&63)) != 0 }

func (s *byteSet) addRange(lo, hi byte) {
	for c := int(lo); c <= int(hi); c++ {
		s.add(byte(c))
	}
}

func (s *byteSet) or(o byteSet) {
	for i := range s {
		s[i] |= o[i]
	}
}

func (s *byteSet) negate() {
	for i := range s {
		s[i] = ^s[i]
	}
}

// fold adds the opposite ASCII case of every letter in the set.
func (s *byteSet) fold() {
	for c := byte('a'); c <= 'z'; c++ {
		if s.has(c) {
			s.add(c - 32)
		}
		if s.has(c - 32) {
			s.add(c)
		}
	}
}

// ranges converts the set to sorted, coalesced [lo,hi] arcs.
func (s *byteSet) ranges() []arc {
	var out []arc
	c := 0
	for c < 256 {
		if !s.has(byte(c)) {
			c++
			continue
		}
		lo := c
		for c < 256 && s.has(byte(c)) {
			c++
		}
		out = append(out, arc{lo: byte(lo), hi: byte(c - 1)})
	}
	return out
}
