package redfa

// Serialization of compiled regex programs into database sections.
// Programs are encoded structurally — the NFA states, arcs, and start
// index — not as source text, so loading a database never re-runs the
// parser. Decoding is bounds-checked like every other dbfmt payload:
// every state index is validated against the decoded state count, arc
// ranges must be ordered, and no dangling (unpatched) arrow survives,
// so a corrupted section errors instead of producing an automaton that
// indexes out of range at scan time.

import "vpatch/internal/dbfmt"

// Encode appends the program to e (deterministically — equal programs
// encode byte-identically).
func (p *Prog) Encode(e *dbfmt.Encoder) {
	e.Blob([]byte(p.src))
	e.Blob([]byte(p.flags))
	e.U32(uint32(p.start))
	e.Uvarint(uint64(len(p.states)))
	for i := range p.states {
		st := &p.states[i]
		e.Bool(st.accept)
		e.Uvarint(uint64(len(st.arcs)))
		for _, a := range st.arcs {
			e.U8(a.lo)
			e.U8(a.hi)
		}
		e.Uvarint(uint64(len(st.eps)))
		for _, t := range st.eps {
			e.U32(uint32(t))
		}
	}
}

// DecodeProg reads one program from d, validating every index.
func DecodeProg(d *dbfmt.Decoder) (*Prog, error) {
	p := &Prog{}
	p.src = string(d.Blob())
	p.flags = string(d.Blob())
	start := int32(d.U32())
	n := d.CountAtMost(maxNFAStates)
	if d.Err() != nil {
		return nil, d.Err()
	}
	p.states = make([]nstate, n)
	for i := range p.states {
		st := &p.states[i]
		st.accept = d.Bool()
		na := d.CountAtMost(256)
		for j := 0; j < na; j++ {
			lo, hi := d.U8(), d.U8()
			if hi < lo {
				d.Fail("regex arc range %d-%d out of order", lo, hi)
			}
			st.arcs = append(st.arcs, arc{lo: lo, hi: hi})
		}
		ne := d.CountAtMost(maxNFAStates)
		for j := 0; j < ne; j++ {
			t := int32(d.U32())
			if t < 0 || int(t) >= n {
				d.Fail("regex state target %d outside %d states", t, n)
			}
			st.eps = append(st.eps, t)
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		if len(st.arcs) > 0 && len(st.eps) == 0 {
			d.Fail("regex consuming state %d has no successor", i)
		}
	}
	if start < 0 || int(start) >= n {
		d.Fail("regex start state %d outside %d states", start, n)
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	p.start = start
	p.buildClasses()
	return p, nil
}
