package redfa

import (
	"bytes"
	"math/rand"
	"regexp"
	"testing"

	"vpatch/internal/dbfmt"
)

// matchOnce runs a fresh machine over data.
func matchOnce(t *testing.T, expr, flags string, data []byte) bool {
	t.Helper()
	p, err := Compile(expr, flags)
	if err != nil {
		t.Fatalf("Compile(%q): %v", expr, err)
	}
	m := NewMachine(p, 0)
	ok, bailed := m.Match(data)
	if bailed {
		t.Fatalf("Match(%q, %q) bailed", expr, data)
	}
	return ok
}

func TestBasicMatches(t *testing.T) {
	cases := []struct {
		expr, flags string
		input       string
		want        bool
	}{
		{"abc", "", "abcdef", true},
		{"abc", "", "abd", false},
		{"abc", "", "xabc", false}, // anchored
		{"a|b", "", "b", true},
		{"a|b", "", "c", false},
		{"a*", "", "", true},
		{"a+", "", "", false},
		{"a+", "", "aaab", true},
		{"a?b", "", "b", true},
		{"a?b", "", "ab", true},
		{"(ab)+c", "", "ababc", true},
		{"(ab)+c", "", "abac", false},
		{"(?:ab)+c", "", "abc", true},
		{"a{3}", "", "aaa", true},
		{"a{3}", "", "aa", false},
		{"a{2,4}b", "", "aab", true},
		{"a{2,4}b", "", "aaaaab", false},
		{"a{2,}b", "", "aaaaaab", true},
		{"a{0}b", "", "b", true},
		{"a{0}b", "", "ab", false},
		{"[a-c]+d", "", "abccbad", true},
		{"[^a-c]d", "", "xd", true},
		{"[^a-c]d", "", "bd", false},
		{`\d{4}`, "", "1234", true},
		{`\d{4}`, "", "123a", false},
		{`\w+=\w+`, "", "key=value", true},
		{`\s`, "", " ", true},
		{`\S`, "", " ", false},
		{`\x41\x42`, "", "AB", true},
		{`a\.b`, "", "a.b", true},
		{`a\.b`, "", "axb", false},
		{"a.b", "", "a\nb", true}, // dot matches any byte
		{"^abc", "", "abc", true},
		{"GET /[a-z]+", "", "GET /admin HTTP/1.1", true},
		{"abc", "i", "AbC", true},
		{"[a-z]+", "i", "XYZ", true},
		{"abc", "s", "abc", true},
		{"abc", "R", "abc", true},
	}
	for _, c := range cases {
		if got := matchOnce(t, c.expr, c.flags, []byte(c.input)); got != c.want {
			t.Errorf("match(%q/%s, %q) = %v, want %v", c.expr, c.flags, c.input, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, expr := range []string{
		"(", ")", "a)", "[", "[a-", "a{", "a{2", "a{4,2}", "a{999}",
		"*", "+a", "?", "a$", "a^b", `\`, `\q`, `\x4`, `\xzz`,
		"(?P<x>a)", "(?=a)",
	} {
		if _, err := Compile(expr, ""); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", expr)
		}
	}
	if _, err := Compile("abc", "x"); err == nil {
		t.Error("unknown flag accepted")
	}
}

// TestAgainstGoRegexp cross-checks anchored prefix matching against the
// standard library on ASCII inputs (where byte and rune semantics
// coincide).
func TestAgainstGoRegexp(t *testing.T) {
	exprs := []string{
		"abc", "a+b*c?", "(ab|cd)+", "[a-f0-9]{2,6}", `\d+[a-z]{1,3}`,
		"x(yz|zy)*x", "a(b|c)(d|e)f", "[^x]{3}x", `\w+`, "(a|ab)(c|bc)",
	}
	rng := rand.New(rand.NewSource(42))
	alpha := []byte("abcdefxyz0123456789 ")
	for _, expr := range exprs {
		p, err := Compile(expr, "")
		if err != nil {
			t.Fatalf("Compile(%q): %v", expr, err)
		}
		ref := regexp.MustCompile("^(?:" + expr + ")")
		m := NewMachine(p, 0)
		for i := 0; i < 300; i++ {
			n := rng.Intn(12)
			in := make([]byte, n)
			for j := range in {
				in[j] = alpha[rng.Intn(len(alpha))]
			}
			got, bailed := m.Match(in)
			if bailed {
				t.Fatalf("%q bailed on %q", expr, in)
			}
			if want := ref.Match(in); got != want {
				t.Errorf("%q on %q: got %v, want %v", expr, in, got, want)
			}
		}
	}
}

// TestIncrementalFeed verifies a verification split at every boundary
// agrees with the one-shot result.
func TestIncrementalFeed(t *testing.T) {
	p, err := Compile(`user=[a-z]{3,8}&pass=\w+`, "")
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{
		[]byte("user=alice&pass=s3cret___tail"),
		[]byte("user=alice&nope"),
		[]byte("user=a&pass=x"),
	}
	for _, in := range inputs {
		whole := NewMachine(p, 0)
		wantOK, _ := whole.Match(in)
		for cut := 0; cut <= len(in); cut++ {
			m := NewMachine(p, 0)
			st, acc, bailed := m.Start()
			if bailed {
				t.Fatal("start bailed")
			}
			got := acc
			if !got {
				next, _, accepted, bail := m.Feed(st, in[:cut])
				if bail {
					t.Fatal("bailed")
				}
				got = accepted
				if !accepted && next != Dead {
					_, _, accepted2, bail2 := m.Feed(next, in[cut:])
					if bail2 {
						t.Fatal("bailed")
					}
					got = accepted2
				}
			}
			if got != wantOK {
				t.Errorf("split at %d of %q: got %v, want %v", cut, in, got, wantOK)
			}
		}
	}
}

// TestBail: a tiny state cap must bail (fail-open), not loop or panic.
func TestBail(t *testing.T) {
	p, err := Compile("(a|b|c|d)(e|f|g|h)(i|j|k|l)m", "")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p, 2)
	_, bailed := m.Match([]byte("aeim"))
	if !bailed {
		t.Fatal("expected bail with 2-state cap")
	}
}

func TestStatesBuiltCounts(t *testing.T) {
	p, err := Compile("[a-z]+[0-9]+", "")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p, 0)
	m.Match([]byte("abc123"))
	first := m.StatesBuilt
	if first == 0 {
		t.Fatal("no states built on first run")
	}
	m.Match([]byte("xyz789"))
	if m.StatesBuilt != first {
		t.Errorf("warm run built %d new states", m.StatesBuilt-first)
	}
}

func TestMatchesEmpty(t *testing.T) {
	for expr, want := range map[string]bool{
		"a*": true, "a+": false, "": true, "a?": true, "abc": false,
	} {
		p, err := Compile(expr, "")
		if err != nil {
			t.Fatal(err)
		}
		if got := p.MatchesEmpty(); got != want {
			t.Errorf("MatchesEmpty(%q) = %v, want %v", expr, got, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	exprs := []string{"abc", "(ab|cd)+[x-z]{2,5}", `\d+\.\d+`, "a.*b"}
	for _, expr := range exprs {
		p, err := Compile(expr, "i")
		if err != nil {
			t.Fatal(err)
		}
		var e dbfmt.Encoder
		p.Encode(&e)
		blob := append([]byte(nil), e.Bytes()...)

		d := dbfmt.NewDecoder(blob)
		q, err := DecodeProg(d)
		if err != nil {
			t.Fatalf("decode %q: %v", expr, err)
		}
		if err := d.Finish(); err != nil {
			t.Fatal(err)
		}
		var e2 dbfmt.Encoder
		q.Encode(&e2)
		if !bytes.Equal(blob, e2.Bytes()) {
			t.Errorf("%q: re-encode differs", expr)
		}
		// Behavioral identity on a few inputs.
		for _, in := range []string{"abcd", "ABxy", "12.5", "a##b", ""} {
			m1, m2 := NewMachine(p, 0), NewMachine(q, 0)
			r1, _ := m1.Match([]byte(in))
			r2, _ := m2.Match([]byte(in))
			if r1 != r2 {
				t.Errorf("%q on %q: original %v, decoded %v", expr, in, r1, r2)
			}
		}
	}
}

// TestDecodeCorrupt: flipped/truncated program bytes must error, never
// panic or index out of range.
func TestDecodeCorrupt(t *testing.T) {
	p, err := Compile("(ab|cd)+x", "")
	if err != nil {
		t.Fatal(err)
	}
	var e dbfmt.Encoder
	p.Encode(&e)
	blob := e.Bytes()
	for cut := 0; cut < len(blob); cut++ {
		d := dbfmt.NewDecoder(blob[:cut])
		if q, err := DecodeProg(d); err == nil && d.Finish() == nil {
			// A truncation that still decodes cleanly must still be runnable.
			NewMachine(q, 0).Match([]byte("abx"))
		}
	}
	for i := 0; i < len(blob); i++ {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x41
		d := dbfmt.NewDecoder(mut)
		if q, err := DecodeProg(d); err == nil && d.Finish() == nil {
			NewMachine(q, 0).Match([]byte("abx"))
		}
	}
}
