// Package redfa is the rule tier's bounded regex verifier: a small
// byte-oriented regex compiler (see parse.go for the accepted subset)
// producing an immutable Thompson NFA Prog, executed by a lazily
// determinized DFA (Machine) whose states are built on demand and
// capped.
//
// The verifier is never a standalone scanner. It runs anchored at
// literal-hit windows the rule layer hands it: the multi-pattern
// engines (V-PATCH and friends) prefilter the traffic, the rule
// clauses narrow the hits, and only then does a regex tail execute —
// over at most Window bytes from its anchor. Execution is incremental
// (a verification can be suspended at a buffer boundary and resumed on
// the flow's next reassembled bytes), and strictly bounded: the DFA
// state cache has a hard cap and each verification has a byte budget.
// Exhausting either bails to report — the verification is treated as a
// match, because everything cheaper (literal anchor, clause chain)
// already agreed; a pathological regex can cause a false alert, never
// a miss and never unbounded work.
//
// Byte classes compress DFA transition tables: the 256 input bytes
// collapse into equivalence classes induced by the NFA's arc
// boundaries, so a typical program has a dozen classes and DFA states
// cost tens of bytes, not kilobytes.
package redfa

import (
	"fmt"
	"sort"
)

// unpatched marks a dangling NFA arrow during parsing; no compiled
// program contains it.
const unpatched int32 = -1

// arc is one byte-range transition of a consuming NFA state.
type arc struct {
	lo, hi byte
}

// nstate is one Thompson NFA state. A consuming state (len(arcs) > 0)
// consumes one byte matching any arc and moves to eps[0]; an epsilon
// state forks to every eps entry without consuming. Accept states have
// accept set and no outgoing edges.
type nstate struct {
	arcs   []arc
	eps    []int32
	accept bool
}

// Prog is an immutable compiled regex program: the NFA, its start
// state, and the byte-class table derived from every arc boundary.
// A Prog is safe for concurrent use; per-goroutine execution state
// lives in Machine.
type Prog struct {
	states []nstate
	start  int32

	// classes maps each input byte to its equivalence class;
	// numClasses is the class count. Two bytes in the same class take
	// identical transitions in every state, so DFA rows need only
	// numClasses entries.
	classes    [256]uint8
	numClasses int

	// src is the original expression text (diagnostics only).
	src   string
	flags string
}

// Compile parses expr (with the documented subset) into a program.
// Flags: 'i' folds ASCII case, 's' and 'R' are accepted no-ops.
func Compile(expr, flags string) (*Prog, error) {
	fold := false
	for _, f := range flags {
		switch f {
		case 'i':
			fold = true
		case 's', 'R':
			// dot already matches any byte; every run is anchor-relative
		default:
			return nil, fmt.Errorf("redfa: unsupported flag %q", string(f))
		}
	}
	p := &Prog{src: expr, flags: flags}
	ps := &parser{src: expr, fold: fold, p: p}
	if err := ps.parse(); err != nil {
		return nil, err
	}
	p.buildClasses()
	return p, nil
}

// Source returns the expression text the program was compiled from.
func (p *Prog) Source() string { return p.src }

// Flags returns the flag string the program was compiled with.
func (p *Prog) Flags() string { return p.flags }

// NumStates returns the NFA state count (sizing diagnostics).
func (p *Prog) NumStates() int { return len(p.states) }

// NumClasses returns the byte-equivalence class count.
func (p *Prog) NumClasses() int { return p.numClasses }

// buildClasses computes byte equivalence classes from arc boundaries:
// bytes b and b+1 fall into different classes iff some arc starts at
// b+1 or ends at b.
func (p *Prog) buildClasses() {
	var boundary [257]bool
	boundary[0] = true
	for i := range p.states {
		for _, a := range p.states[i].arcs {
			boundary[a.lo] = true
			boundary[int(a.hi)+1] = true
		}
	}
	cls := uint8(0)
	for b := 0; b < 256; b++ {
		if b > 0 && boundary[b] {
			cls++
		}
		p.classes[b] = cls
	}
	p.numClasses = int(cls) + 1
}

// MatchesEmpty reports whether the program accepts the empty input —
// the verification outcome known before consuming a single byte.
func (p *Prog) MatchesEmpty() bool {
	m := NewMachine(p, 4)
	_, accept, _ := m.Start()
	return accept
}

// Dead is the Machine state index meaning the verification can never
// accept (every NFA thread died).
const Dead int32 = -1

// dstate is one lazily built DFA state: the sorted NFA state set it
// stands for and its per-class transition row (unbuiltNext = not yet
// determinized).
type dstate struct {
	nfa    []int32
	next   []int32
	accept bool
}

const unbuiltNext int32 = -2

// Machine executes one Prog as a lazy DFA. It caches determinized
// states up to a hard cap; when a transition would need a new state
// beyond the cap, execution bails (see Feed). A Machine is single-
// goroutine scratch — one per shard/session, shared freely across that
// shard's flows and suspended verifications (state indexes stay valid
// for the Machine's lifetime; the cache never evicts).
type Machine struct {
	prog      *Prog
	maxStates int
	states    []dstate
	cache     map[string]int32

	// StatesBuilt counts DFA states constructed over the Machine's
	// lifetime (the VerifierStates metric is its delta).
	StatesBuilt uint64

	// scratch for closure computation
	set  []int32
	mark []bool
	key  []byte
}

// DefaultMaxStates bounds a Machine's DFA cache. A few hundred states
// cover real rule tails; pathological programs bail to report instead
// of growing further.
const DefaultMaxStates = 512

// NewMachine returns an executor for p with the given state-cache cap
// (0 = DefaultMaxStates).
func NewMachine(p *Prog, maxStates int) *Machine {
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	return &Machine{
		prog:      p,
		maxStates: maxStates,
		cache:     make(map[string]int32),
		mark:      make([]bool, len(p.states)),
	}
}

// closure expands seeds through epsilon states into m.set (sorted,
// deduped) and reports whether an accept state is reachable.
func (m *Machine) closure(seeds []int32) (accept bool) {
	m.set = m.set[:0]
	for i := range m.mark {
		m.mark[i] = false
	}
	var stack []int32
	stack = append(stack, seeds...)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if m.mark[s] {
			continue
		}
		m.mark[s] = true
		st := &m.prog.states[s]
		if st.accept {
			accept = true
		}
		if len(st.arcs) > 0 {
			m.set = append(m.set, s) // waits to consume a byte
			continue
		}
		if st.accept {
			continue
		}
		stack = append(stack, st.eps...)
	}
	sort.Slice(m.set, func(i, j int) bool { return m.set[i] < m.set[j] })
	return accept
}

// intern returns the DFA state for the current m.set/accept, creating
// it if new. ok is false when the cap would be exceeded (bail).
func (m *Machine) intern(accept bool) (id int32, ok bool) {
	if len(m.set) == 0 && !accept {
		return Dead, true
	}
	m.key = m.key[:0]
	for _, s := range m.set {
		m.key = append(m.key, byte(s), byte(s>>8))
	}
	if accept {
		m.key = append(m.key, 0xFF, 0xFF)
	}
	if id, hit := m.cache[string(m.key)]; hit {
		return id, true
	}
	if len(m.states) >= m.maxStates {
		return 0, false
	}
	id = int32(len(m.states))
	ds := dstate{
		nfa:    append([]int32(nil), m.set...),
		next:   make([]int32, m.prog.numClasses),
		accept: accept,
	}
	for i := range ds.next {
		ds.next[i] = unbuiltNext
	}
	m.states = append(m.states, ds)
	m.cache[string(m.key)] = id
	m.StatesBuilt++
	return id, true
}

// Start returns the initial DFA state and whether it already accepts
// (an empty-matching program). bailed is true when even the start
// state cannot be interned (cap 0 edge case).
func (m *Machine) Start() (state int32, accept, bailed bool) {
	accept = m.closure([]int32{m.prog.start})
	id, ok := m.intern(accept)
	if !ok {
		return 0, false, true
	}
	return id, accept, false
}

// step determinizes one transition. ok=false means bail.
func (m *Machine) step(state int32, b byte) (next int32, accept, ok bool) {
	ds := &m.states[state]
	cls := m.prog.classes[b]
	if n := ds.next[cls]; n != unbuiltNext {
		if n == Dead {
			return Dead, false, true
		}
		return n, m.states[n].accept, true
	}
	// Build: advance every waiting NFA state whose arcs cover b.
	var seeds []int32
	for _, s := range ds.nfa {
		st := &m.prog.states[s]
		for _, a := range st.arcs {
			if b >= a.lo && b <= a.hi {
				seeds = append(seeds, st.eps[0])
				break
			}
		}
	}
	acc := m.closure(seeds)
	id, interned := m.intern(acc)
	if !interned {
		return 0, false, false
	}
	ds = &m.states[state] // intern may have grown m.states
	ds.next[cls] = id
	if id == Dead {
		return Dead, false, true
	}
	return id, acc, true
}

// Feed advances a verification through data. It stops at the first of:
//   - accept reached (accepted=true; consumed = bytes eaten inclusive),
//   - every NFA thread dead (next=Dead, accepted=false),
//   - data exhausted (next = resumable state, accepted=false),
//   - state-cache cap hit (bailed=true — the caller must treat the
//     verification as a report, the fail-open contract).
//
// The caller enforces the window/byte budget by slicing data.
func (m *Machine) Feed(state int32, data []byte) (next int32, consumed int, accepted, bailed bool) {
	cur := state
	for i, b := range data {
		n, acc, ok := m.step(cur, b)
		if !ok {
			return cur, i, false, true
		}
		if acc {
			return n, i + 1, true, false
		}
		if n == Dead {
			return Dead, i + 1, false, false
		}
		cur = n
	}
	return cur, len(data), false, false
}

// Match is the one-shot convenience: anchored match of data's prefix.
// bailed follows the fail-open contract (caller reports).
func (m *Machine) Match(data []byte) (matched, bailed bool) {
	st, acc, bail := m.Start()
	if bail {
		return false, true
	}
	if acc {
		return true, false
	}
	next, _, accepted, bail := m.Feed(st, data)
	if bail {
		return false, true
	}
	_ = next
	return accepted, false
}
