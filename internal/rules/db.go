package rules

import (
	"bytes"
	"fmt"

	"vpatch/internal/dbfmt"
	"vpatch/internal/patterns"
	"vpatch/internal/rules/redfa"
)

// Serialization of the rule-semantics set: the payload of a database's
// TagRules section. The literal set itself travels in the database's
// TagPatterns section as before — this section only carries what the
// rule tier layers on top (clause conditions referencing literal IDs,
// and compiled regex programs), so literal-only readers of the same
// file are unaffected. Encoding is deterministic: encode(decode(x))
// reproduces x byte for byte.

// Clause flag bits.
const (
	cfNocase    = 1 << 0
	cfExact     = 1 << 1
	cfHasDepth  = 1 << 2
	cfHasWithin = 1 << 3
)

// maxRules bounds the decoder's trust in rule counts.
const maxRules = 1 << 20

// Encode appends the set's rule-section payload to e. The literal set
// (s.Lits) is not included; it serializes separately.
func (s *Set) Encode(e *dbfmt.Encoder) {
	e.Uvarint(uint64(s.Window))
	e.Uvarint(uint64(len(s.Rules)))
	for ri := range s.Rules {
		r := &s.Rules[ri]
		e.Uvarint(uint64(r.SID))
		e.Blob([]byte(r.Msg))
		e.U8(uint8(r.Proto))
		e.Uvarint(uint64(len(r.Clauses)))
		for ci := range r.Clauses {
			cl := &r.Clauses[ci]
			var flags uint8
			if cl.Nocase {
				flags |= cfNocase
			}
			if cl.Exact {
				flags |= cfExact
			}
			if cl.HasDepth {
				flags |= cfHasDepth
			}
			if cl.HasWithin {
				flags |= cfHasWithin
			}
			e.U8(flags)
			e.Uvarint(uint64(cl.Lit))
			e.Blob(cl.Data)
			e.Uvarint(uint64(cl.Offset))
			e.Uvarint(uint64(cl.Depth))
			e.Uvarint(uint64(cl.Distance))
			e.Uvarint(uint64(cl.Within))
		}
		e.Bool(r.Regex != nil)
		if r.Regex != nil {
			r.Regex.Encode(e)
		}
	}
}

// DecodeSet restores a rule set from a TagRules payload, resolving
// clause literal references against lits (the database's already-
// decoded pattern set) and rebuilding the postings lists. Every count,
// reference and bound is validated; corrupt input returns an error,
// never panics.
func DecodeSet(payload []byte, lits *patterns.Set) (*Set, error) {
	d := dbfmt.NewDecoder(payload)
	s := &Set{Lits: lits}
	s.Window = int64(d.Uvarint())
	if d.Err() == nil && (s.Window <= 0 || s.Window > 1<<30) {
		return nil, fmt.Errorf("rules: bad verification window %d", s.Window)
	}
	nRules := d.Uvarint()
	if d.Err() == nil && nRules > maxRules {
		return nil, fmt.Errorf("rules: rule count %d exceeds limit", nRules)
	}
	for ri := uint64(0); ri < nRules && d.Err() == nil; ri++ {
		r := Rule{ID: int32(ri)}
		r.SID = int64(d.Uvarint())
		if d.Err() == nil && r.SID < 0 {
			return nil, fmt.Errorf("rules: rule %d: sid overflows", ri)
		}
		r.Msg = string(d.Blob())
		r.Proto = patterns.Protocol(d.U8())
		if d.Err() == nil && r.Proto > patterns.ProtoSMTP {
			return nil, fmt.Errorf("rules: rule %d: unknown protocol %d", ri, r.Proto)
		}
		nClauses := d.Uvarint()
		if d.Err() == nil && (nClauses == 0 || nClauses > maxClauses) {
			return nil, fmt.Errorf("rules: rule %d: bad clause count %d", ri, nClauses)
		}
		for ci := uint64(0); ci < nClauses && d.Err() == nil; ci++ {
			var cl Clause
			flags := d.U8()
			if d.Err() == nil && flags&^uint8(cfNocase|cfExact|cfHasDepth|cfHasWithin) != 0 {
				return nil, fmt.Errorf("rules: rule %d clause %d: unknown flags %#x", ri, ci, flags)
			}
			cl.Nocase = flags&cfNocase != 0
			cl.Exact = flags&cfExact != 0
			cl.HasDepth = flags&cfHasDepth != 0
			cl.HasWithin = flags&cfHasWithin != 0
			lit := d.Uvarint()
			cl.Data = append([]byte(nil), d.Blob()...)
			cl.Offset = int64(d.Uvarint())
			cl.Depth = int64(d.Uvarint())
			cl.Distance = int64(d.Uvarint())
			cl.Within = int64(d.Uvarint())
			if d.Err() != nil {
				break
			}
			if lit >= uint64(lits.Len()) {
				return nil, fmt.Errorf("rules: rule %d clause %d: literal %d out of range (%d literals)", ri, ci, lit, lits.Len())
			}
			cl.Lit = int32(lit)
			p := lits.Pattern(cl.Lit)
			// The evaluator compares cl.Data against the hit span byte for
			// byte (Exact) and assumes the span length equals the clause
			// length everywhere — the reference literal must agree.
			if len(cl.Data) == 0 || len(cl.Data) != len(p.Data) {
				return nil, fmt.Errorf("rules: rule %d clause %d: clause/literal length mismatch (%d vs %d)", ri, ci, len(cl.Data), len(p.Data))
			}
			if cl.Nocase && (!p.Nocase || !bytes.Equal(cl.Data, p.Data)) {
				return nil, fmt.Errorf("rules: rule %d clause %d: nocase clause does not match its literal", ri, ci)
			}
			if cl.Exact && !p.Nocase {
				return nil, fmt.Errorf("rules: rule %d clause %d: exact re-verification against a case-sensitive literal", ri, ci)
			}
			for _, b := range []int64{cl.Offset, cl.Depth, cl.Distance, cl.Within} {
				if b < 0 || b > 1<<30 {
					return nil, fmt.Errorf("rules: rule %d clause %d: bound %d out of range", ri, ci, b)
				}
			}
			r.Clauses = append(r.Clauses, cl)
		}
		if d.Bool() && d.Err() == nil {
			prog, err := redfa.DecodeProg(d)
			if err != nil {
				return nil, fmt.Errorf("rules: rule %d: %w", ri, err)
			}
			r.Regex = prog
		}
		if d.Err() == nil {
			s.Rules = append(s.Rules, r)
		}
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	s.buildPostings()
	return s, nil
}
