package rules

import (
	"bytes"
	"math"
	"sort"

	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/rules/redfa"
)

// Evaluation over literal-hit streams. The ids pipeline feeds the
// evaluator two things, both in stream order per flow: every literal
// hit (translated to absolute stream offsets, carry duplicates already
// removed), and every reassembled buffer (so suspended regex
// verifications can consume bytes that arrived after their anchor).
// Per-flow state is a FlowState, created lazily on a flow's first
// relevant hit; per-shard scratch (the lazy-DFA machines, shared by
// all of a shard's flows) is an Eval.
//
// The clause tracker keeps, per rule per flow, the sorted end offsets
// at which each clause chain prefix has been satisfied. Hit ends are
// nondecreasing per flow (buffers are contiguous and each buffer's
// hits are processed sorted by end), which keeps every list append-
// only and lets dead prefixes be pruned on lookup: an end e_prev can
// only satisfy a future clause-k hit ending at e >= current e, so once
// e_prev < e - within it can never match again. Clauses whose
// successor has no `within` keep a single entry (the minimum end —
// with only a lower bound to satisfy, earlier is always at least as
// good).
//
// Completions of the final clause become anchors. A rule with no
// regex tail alerts immediately; with a tail, anchors enter a FIFO
// whose order is the completion order (= ascending anchor offset), and
// the alert fires from the first anchor whose verification accepts
// after all earlier anchors rejected — so the alert offset is exactly
// the one the naive reference (which tries anchors in ascending order)
// would report, even when verifications resolve out of order across
// segment boundaries. Verification is fail-open: a bailed machine
// (state-cache cap) counts as accepted, never as a miss.

// Eval is one shard's rule-evaluation scratch: the per-rule lazy-DFA
// machines. Single-goroutine, shared across the shard's flows.
type Eval struct {
	set       *Set
	machines  []*redfa.Machine
	maxStates int
}

// NewEval returns evaluation scratch for set.
func NewEval(set *Set) *Eval {
	return &Eval{
		set:      set,
		machines: make([]*redfa.Machine, len(set.Rules)),
	}
}

// SetMaxStates caps each rule's lazy-DFA state cache (0 =
// redfa.DefaultMaxStates). Applies to machines not yet created.
func (ev *Eval) SetMaxStates(n int) { ev.maxStates = n }

// Set returns the compiled rule set under evaluation.
func (ev *Eval) Set() *Set { return ev.set }

func (ev *Eval) machine(rule int32) *redfa.Machine {
	m := ev.machines[rule]
	if m == nil {
		m = redfa.NewMachine(ev.set.Rules[rule].Regex, ev.maxStates)
		ev.machines[rule] = m
	}
	return m
}

// FlowState is one flow's rule progress. The zero value is not usable;
// create with NewFlowState (ids does so lazily, on the flow's first
// hit that has postings).
type FlowState struct {
	// proto is the flow's traffic class: only rules for it (or Generic
	// rules) may fire. The prefilter group can deliver hits for other
	// rules — a literal shared across protocols compiles Generic and
	// lands in every group — so the evaluator must re-filter.
	proto patterns.Protocol
	rules map[int32]*ruleState
	// pendings counts suspended regex verifications across all rules,
	// so the pipeline can skip the per-buffer feed walk when none are
	// waiting (the common case).
	pendings int
}

// NewFlowState returns empty per-flow evaluation state for a flow
// classified to proto.
func NewFlowState(proto patterns.Protocol) *FlowState {
	return &FlowState{proto: proto, rules: make(map[int32]*ruleState)}
}

// HasPending reports whether any regex verification is suspended
// waiting for more stream bytes.
func (fs *FlowState) HasPending() bool { return fs != nil && fs.pendings > 0 }

// anchor statuses.
const (
	aPending uint8 = iota
	aAccepted
	aRejected
)

// anchor is one completion of a rule's final clause awaiting (or done
// with) regex verification.
type anchor struct {
	alertOff int64 // alert stream offset = final clause match start
	anchorE  int64 // verification anchor = final clause match end
	consumed int64 // stream offset of the next byte to feed
	state    int32 // DFA state while status == aPending
	status   uint8
}

// ruleState is one rule's per-flow progress.
type ruleState struct {
	alerted bool
	// ends[k] holds the sorted end offsets at which clauses 0..k are
	// all satisfied (unused for the final clause — completions become
	// alerts or anchors instead).
	ends    [][]int64
	anchors []anchor
}

func (fs *FlowState) rule(id int32, nClauses int) *ruleState {
	rs := fs.rules[id]
	if rs == nil {
		rs = &ruleState{ends: make([][]int64, nClauses)}
		fs.rules[id] = rs
	}
	return rs
}

// EmitFunc receives one rule alert: the rule ID and the alert's
// absolute stream offset.
type EmitFunc func(rule int32, streamOff int64)

// OnHit processes one literal hit at stream offsets [start, end) of
// the flow. buf holds the flow's bytes from stream offset bufBase on —
// the evaluator reads the hit's span for exact-case re-verification
// and feeds bytes after a new anchor into its verifier. c may be nil.
func (ev *Eval) OnHit(fs *FlowState, lit int32, start, end int64, buf []byte, bufBase int64, c *metrics.Counters, emit EmitFunc) {
	for _, p := range ev.set.Postings(lit) {
		r := &ev.set.Rules[p.Rule]
		if r.Proto != patterns.ProtoGeneric && r.Proto != fs.proto {
			continue
		}
		rs := fs.rule(p.Rule, len(r.Clauses))
		if rs.alerted {
			continue
		}
		k := int(p.Clause)
		cl := &r.Clauses[k]
		if cl.Exact {
			// Case-sensitive clause anchored on a shared nocase literal:
			// the prefilter hit is case-insensitive, re-check exact bytes.
			if !bytes.Equal(buf[start-bufBase:end-bufBase], cl.Data) {
				continue
			}
		}
		if k == 0 {
			if start < cl.Offset {
				continue
			}
			if cl.HasDepth && end > cl.Offset+cl.Depth {
				continue
			}
		} else {
			minP := int64(math.MinInt64)
			if cl.HasWithin {
				minP = end - cl.Within
			}
			maxP := start - cl.Distance
			prev := rs.ends[k-1]
			// Prune dead prefix: future hits end at >= end, so entries
			// below minP can never satisfy this clause again.
			cut := 0
			if minP != math.MinInt64 {
				cut = sort.Search(len(prev), func(i int) bool { return prev[i] >= minP })
				if cut > 0 {
					prev = prev[cut:]
					rs.ends[k-1] = prev
				}
			}
			if len(prev) == 0 || prev[0] > maxP {
				continue
			}
		}
		if k == len(r.Clauses)-1 {
			// Chain complete at [start, end).
			if r.Regex == nil {
				rs.alerted = true
				rs.ends, rs.anchors = nil, nil
				if c != nil {
					c.RuleAlerts++
				}
				emit(r.ID, start)
				continue
			}
			ev.startAnchor(fs, rs, r, start, end, buf, bufBase, c)
			ev.resolve(fs, rs, r, c, emit)
			continue
		}
		// Record the satisfied prefix end for the successor clause.
		next := &r.Clauses[k+1]
		ends := rs.ends[k]
		if !next.HasWithin {
			// Only a lower bound ahead: the smallest end dominates.
			if len(ends) == 0 {
				rs.ends[k] = append(ends, end)
			}
			continue
		}
		if n := len(ends); n == 0 || ends[n-1] != end {
			rs.ends[k] = append(ends, end)
		}
	}
}

// startAnchor begins (and advances as far as the buffer allows) one
// regex verification anchored at stream offset end.
func (ev *Eval) startAnchor(fs *FlowState, rs *ruleState, r *Rule, start, end int64, buf []byte, bufBase int64, c *metrics.Counters) {
	m := ev.machine(r.ID)
	before := m.StatesBuilt
	if c != nil {
		c.VerifierRuns++
		defer func() { c.VerifierStates += m.StatesBuilt - before }()
	}
	a := anchor{alertOff: start, anchorE: end, consumed: end}
	st, acc, bailed := m.Start()
	switch {
	case bailed || acc:
		a.status = aAccepted
	default:
		a.state = st
		ev.feedAnchor(&a, m, buf, bufBase)
	}
	if a.status == aPending {
		fs.pendings++
	}
	rs.anchors = append(rs.anchors, a)
}

// feedAnchor advances one pending verification through the bytes buf
// holds past a.consumed, bounded by the window budget.
func (ev *Eval) feedAnchor(a *anchor, m *redfa.Machine, buf []byte, bufBase int64) {
	winEnd := a.anchorE + ev.set.Window
	feedEnd := bufBase + int64(len(buf))
	if winEnd < feedEnd {
		feedEnd = winEnd
	}
	if a.consumed < feedEnd {
		next, n, accepted, bailed := m.Feed(a.state, buf[a.consumed-bufBase:feedEnd-bufBase])
		a.consumed += int64(n)
		switch {
		case bailed || accepted:
			a.status = aAccepted
			return
		case next == redfa.Dead:
			a.status = aRejected
			return
		default:
			a.state = next
		}
	}
	if a.consumed >= winEnd {
		a.status = aRejected // window exhausted without an accept
	}
}

// resolve drains the head of a rule's anchor FIFO: the alert fires
// from the first accepted anchor once every earlier anchor has
// rejected, preserving the naive reference's ascending-anchor order.
func (ev *Eval) resolve(fs *FlowState, rs *ruleState, r *Rule, c *metrics.Counters, emit EmitFunc) {
	for len(rs.anchors) > 0 {
		a := &rs.anchors[0]
		switch a.status {
		case aAccepted:
			for i := range rs.anchors {
				if rs.anchors[i].status == aPending {
					fs.pendings--
				}
			}
			rs.alerted = true
			rs.ends, rs.anchors = nil, nil
			if c != nil {
				c.RuleAlerts++
			}
			emit(r.ID, a.alertOff)
			return
		case aRejected:
			rs.anchors = rs.anchors[1:]
		default:
			return
		}
	}
}

// FinishFlow settles a flow whose stream has ended: every still-
// pending verification is rejected (no accept materialized on the
// bytes that actually arrived — the reference's behavior on the
// truncated window) so that an accepted later anchor blocked behind a
// pending head can still fire. The pipeline calls it at flow close.
func (ev *Eval) FinishFlow(fs *FlowState, c *metrics.Counters, emit EmitFunc) {
	if fs == nil {
		return
	}
	for id, rs := range fs.rules {
		if len(rs.anchors) == 0 {
			continue
		}
		for i := range rs.anchors {
			if rs.anchors[i].status == aPending {
				rs.anchors[i].status = aRejected
				fs.pendings--
			}
		}
		ev.resolve(fs, rs, &ev.set.Rules[id], c, emit)
	}
}

// FeedBuffer advances every suspended verification of the flow with a
// newly arrived buffer (bytes from stream offset bufBase on). The
// pipeline calls it once per reassembled buffer, before that buffer's
// hits, and only when HasPending reports work.
func (ev *Eval) FeedBuffer(fs *FlowState, buf []byte, bufBase int64, c *metrics.Counters, emit EmitFunc) {
	if fs == nil || fs.pendings == 0 {
		return
	}
	for id, rs := range fs.rules {
		if len(rs.anchors) == 0 {
			continue
		}
		r := &ev.set.Rules[id]
		m := ev.machine(id)
		before := m.StatesBuilt
		advanced := false
		for i := range rs.anchors {
			a := &rs.anchors[i]
			if a.status != aPending {
				continue
			}
			ev.feedAnchor(a, m, buf, bufBase)
			if a.status != aPending {
				fs.pendings--
			}
			advanced = true
		}
		if advanced && c != nil {
			c.VerifierStates += m.StatesBuilt - before
		}
		ev.resolve(fs, rs, r, c, emit)
	}
}
