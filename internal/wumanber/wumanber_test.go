package wumanber

import (
	"math/rand"
	"testing"

	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

func scan(m *Matcher, input []byte) []patterns.Match {
	var out []patterns.Match
	m.Scan(input, nil, func(mm patterns.Match) { out = append(out, mm) })
	return out
}

func checkAgainstNaive(t *testing.T, set *patterns.Set, input []byte) {
	t.Helper()
	got := scan(Build(set), input)
	want := patterns.FindAllNaive(set, input)
	if !patterns.EqualMatches(got, want) {
		t.Fatalf("WM disagrees with naive: got %d matches, want %d", len(got), len(want))
	}
}

func TestBasicMatching(t *testing.T) {
	checkAgainstNaive(t, patterns.FromStrings("announce", "annual", "annually"), []byte("CPM_annual_conference announce"))
}

func TestShortAndLongMix(t *testing.T) {
	checkAgainstNaive(t, patterns.FromStrings("ab", "abcdef", "cde"), []byte("zabcdefz ab cde"))
}

func TestOneBytePatterns(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte{'x'}, false, patterns.ProtoGeneric)
	set.Add([]byte("hello"), false, patterns.ProtoGeneric)
	checkAgainstNaive(t, set, []byte("x hello xx hellox"))
}

func TestOnlyOneBytePatterns(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte{'q'}, false, patterns.ProtoGeneric)
	m := Build(set)
	if m.WindowLen() != 0 {
		t.Fatalf("window len %d for len-1-only set", m.WindowLen())
	}
	checkAgainstNaive(t, set, []byte("qqabcq"))
}

func TestOverlapping(t *testing.T) {
	checkAgainstNaive(t, patterns.FromStrings("aa", "aaa"), []byte("aaaaa"))
}

func TestWindowIsMinLength(t *testing.T) {
	m := Build(patterns.FromStrings("abc", "abcdefgh"))
	if m.WindowLen() != 3 {
		t.Fatalf("WindowLen = %d, want 3", m.WindowLen())
	}
}

func TestNocase(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte("GeT"), true, patterns.ProtoHTTP)
	set.Add([]byte("Host"), false, patterns.ProtoHTTP)
	checkAgainstNaive(t, set, []byte("GET get Host HOST gEt host"))
}

func TestEmptyCases(t *testing.T) {
	if n := len(scan(Build(patterns.NewSet()), []byte("abc"))); n != 0 {
		t.Fatalf("empty set matched %d", n)
	}
	if n := len(scan(Build(patterns.FromStrings("abc")), nil)); n != 0 {
		t.Fatalf("empty input matched %d", n)
	}
	// Input shorter than the window.
	if n := len(scan(Build(patterns.FromStrings("abcdef")), []byte("ab"))); n != 0 {
		t.Fatalf("short input matched %d", n)
	}
}

func TestMatchAtBoundaries(t *testing.T) {
	checkAgainstNaive(t, patterns.FromStrings("start", "end"), []byte("start middle end"))
	checkAgainstNaive(t, patterns.FromStrings("xy"), []byte("xy"))
}

func TestSkippingActuallySkips(t *testing.T) {
	// With one long pattern and inert input, shift probes must be far
	// fewer than input bytes.
	m := Build(patterns.FromStrings("0123456789abcdef"))
	var c metrics.Counters
	input := make([]byte, 1<<16) // zero bytes never match any block
	m.Scan(input, &c, nil)
	if c.Filter1Probes >= uint64(len(input))/8 {
		t.Fatalf("shift probes %d: no skipping happened", c.Filter1Probes)
	}
}

func TestShortPatternsKillSkipping(t *testing.T) {
	// The documented weakness: adding a 2-byte pattern forces m=2 and
	// shift<=1, so probes ~ input size.
	m := Build(patterns.FromStrings("0123456789abcdef", "zz"))
	var c metrics.Counters
	input := make([]byte, 1<<14)
	m.Scan(input, &c, nil)
	if c.Filter1Probes < uint64(len(input))/2 {
		t.Fatalf("shift probes %d: expected skipping to collapse with short patterns", c.Filter1Probes)
	}
}

func TestRandomAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		set := patterns.NewSet()
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			l := 1 + rng.Intn(7)
			p := make([]byte, l)
			for j := range p {
				p[j] = byte('a' + rng.Intn(3))
			}
			set.Add(p, rng.Intn(5) == 0, patterns.ProtoGeneric)
		}
		input := make([]byte, 250)
		for j := range input {
			input[j] = byte('a' + rng.Intn(3))
		}
		checkAgainstNaive(t, set, input)
	}
}

func TestRealisticTraffic(t *testing.T) {
	set := patterns.GenerateS1(13).Subset(60, 5)
	input := traffic.Synthesize(traffic.DARPA2000, 16<<10, 3, set)
	checkAgainstNaive(t, set, input)
}

func TestCounters(t *testing.T) {
	m := Build(patterns.FromStrings("needle"))
	var c metrics.Counters
	m.Scan([]byte("hay needle hay"), &c, nil)
	if c.BytesScanned != 14 {
		t.Fatalf("BytesScanned = %d", c.BytesScanned)
	}
	if c.Matches != 1 {
		t.Fatalf("Matches = %d", c.Matches)
	}
	if c.Filter1Probes == 0 {
		t.Fatal("no shift probes counted")
	}
}

func TestMemoryFootprint(t *testing.T) {
	m := Build(patterns.GenerateS1(1).Subset(500, 1))
	if m.MemoryFootprint() < 1<<17 {
		t.Fatalf("footprint %d implausibly small (shift table alone is 128 KB)", m.MemoryFootprint())
	}
}

func BenchmarkScanLongPatternsOnly(b *testing.B) {
	set := patterns.GenerateS1(1).Filter(func(p *patterns.Pattern) bool { return p.Len() >= 8 })
	m := Build(set)
	input := traffic.Synthesize(traffic.ISCXDay2, 1<<20, 1, nil)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scan(input, nil, nil)
	}
}

func BenchmarkScanFullRuleset(b *testing.B) {
	set := patterns.GenerateS1(1).WebSubset()
	m := Build(set)
	input := traffic.Synthesize(traffic.ISCXDay2, 1<<20, 1, nil)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scan(input, nil, nil)
	}
}
