package wumanber

import (
	"vpatch/internal/dbfmt"
	"vpatch/internal/engine"
	"vpatch/internal/patterns"
)

// Compiled-database serialization for Wu-Manber: the 128 KB shift
// table as one raw array, the hash buckets sparsely (only non-empty
// 2-byte block indexes), and the 1-byte-pattern tables.

var _ engine.DBCodec = (*Matcher)(nil)

// maxWindow bounds the deserialized window length; windows are minimum
// pattern lengths, so anything beyond this is corruption.
const maxWindow = 1 << 20

// EncodeCompiled appends the matcher's compiled state (engine.DBCodec).
func (m *Matcher) EncodeCompiled(e *dbfmt.Encoder) {
	e.Bool(m.folded)
	e.Bool(m.hasLen1)
	e.Bool(m.hasBlock)

	total := 0
	for b := range m.len1 {
		e.Uvarint(uint64(len(m.len1[b])))
		total += len(m.len1[b])
	}
	flat := make([]int32, 0, total)
	for b := range m.len1 {
		flat = append(flat, m.len1[b]...)
	}
	e.Int32s(flat)

	if !m.hasBlock {
		return
	}
	e.Uvarint(uint64(m.m))
	e.Uint16s(m.shift)
	nonEmpty := 0
	for _, b := range m.buckets {
		if len(b) > 0 {
			nonEmpty++
		}
	}
	e.Uvarint(uint64(nonEmpty))
	for idx, b := range m.buckets {
		if len(b) > 0 {
			e.Uvarint(uint64(idx))
			e.Int32s(b)
		}
	}
}

// Decode restores a Wu-Manber engine over set.
func Decode(d *dbfmt.Decoder, set *patterns.Set) (*Matcher, error) {
	m := &Matcher{set: set}
	nPat := int32(set.Len())
	m.folded = d.Bool()
	m.hasLen1 = d.Bool()
	m.hasBlock = d.Bool()

	var counts [256]int
	total := 0
	for b := range counts {
		n := d.CountAtMost(d.Remaining())
		if d.Err() != nil {
			return nil, d.Err()
		}
		counts[b] = n
		total += n
	}
	flat := d.Int32s()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if len(flat) != total {
		d.Fail("len1 table has %d ids, counts claim %d", len(flat), total)
		return nil, d.Err()
	}
	for _, id := range flat {
		if id < 0 || id >= nPat {
			d.Fail("len1 pattern id %d out of range [0,%d)", id, nPat)
			return nil, d.Err()
		}
	}
	off := 0
	for b := range counts {
		if counts[b] > 0 {
			m.len1[b] = flat[off : off+counts[b] : off+counts[b]]
			off += counts[b]
		}
	}

	if !m.hasBlock {
		if err := d.Finish(); err != nil {
			return nil, err
		}
		return m, nil
	}

	win := d.Uvarint()
	m.shift = d.Uint16s()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if win < blockSize || win > maxWindow {
		d.Fail("window length %d out of range [%d,%d]", win, blockSize, maxWindow)
		return nil, d.Err()
	}
	m.m = int(win)
	if len(m.shift) != 1<<16 {
		d.Fail("shift table has %d entries, want %d", len(m.shift), 1<<16)
		return nil, d.Err()
	}
	m.buckets = make([][]int32, 1<<16)
	nBuckets := d.CountAtMost(1 << 16)
	if d.Err() != nil {
		return nil, d.Err()
	}
	prev := -1
	for i := 0; i < nBuckets; i++ {
		idx := d.CountAtMost(1<<16 - 1)
		ids := d.Int32s()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if idx <= prev {
			d.Fail("bucket index %d out of order", idx)
			return nil, d.Err()
		}
		prev = idx
		for _, id := range ids {
			if id < 0 || id >= nPat {
				d.Fail("bucket pattern id %d out of range [0,%d)", id, nPat)
				return nil, d.Err()
			}
		}
		m.buckets[idx] = ids
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}
