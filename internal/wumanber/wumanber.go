// Package wumanber implements the Wu-Manber multi-pattern matcher, the
// skip-table baseline the paper discusses in related work: a SHIFT table
// over 2-byte blocks lets the scan jump over input that cannot end a
// match. Its documented weakness — the shift distance collapses when the
// set contains short patterns, which NIDS rule sets always do — is exactly
// why the paper's family of filtering algorithms wins on realistic rule
// sets; the comparison is reproduced in the ablation benches.
//
// One-byte patterns cannot participate in a 2-byte block scheme at all;
// they are handled by a dedicated per-byte pass (the matcher therefore
// degrades to no skipping for them, faithfully to the algorithm's
// published limitation).
package wumanber

import (
	"vpatch/internal/bitarr"
	"vpatch/internal/engine"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
)

// block size in bytes (B in the Wu-Manber paper).
const blockSize = 2

// Matcher is a compiled Wu-Manber searcher. The shift table and buckets
// are immutable after Build and the sliding window position is a local,
// so one Matcher may scan from any number of goroutines concurrently.
type Matcher struct {
	set    *patterns.Set
	folded bool

	// m is the window length: the minimum length over patterns of at
	// least blockSize bytes.
	m int
	// shift[idx] is how far the window may advance when its trailing
	// 2-byte block has index idx.
	shift []uint16
	// hash buckets: pattern IDs whose block at offset m-blockSize equals
	// the window's trailing block (consulted when shift is 0).
	buckets [][]int32

	// len1[b] lists 1-byte patterns matching byte b (checked per byte).
	len1    [256][]int32
	hasLen1 bool
	// hasBlock reports whether any pattern reaches blockSize bytes and
	// the shift machinery is active.
	hasBlock bool
}

// Build compiles the pattern set.
func Build(set *patterns.Set) *Matcher {
	m := &Matcher{set: set}
	for i := range set.Patterns() {
		if set.Patterns()[i].Nocase {
			m.folded = true
			break
		}
	}
	pats := set.Patterns()

	// Partition: 1-byte patterns vs block-capable patterns, and find m.
	m.m = 1 << 30
	for i := range pats {
		p := &pats[i]
		if len(p.Data) < blockSize {
			b := p.Data[0]
			if m.folded {
				b = patterns.FoldByte(b)
			}
			m.len1[b] = append(m.len1[b], p.ID)
			m.hasLen1 = true
			continue
		}
		m.hasBlock = true
		if len(p.Data) < m.m {
			m.m = len(p.Data)
		}
	}
	if !m.hasBlock {
		m.m = 0
		return m
	}

	defaultShift := uint16(m.m - blockSize + 1)
	m.shift = make([]uint16, 1<<16)
	for i := range m.shift {
		m.shift[i] = defaultShift
	}
	m.buckets = make([][]int32, 1<<16)

	for i := range pats {
		p := &pats[i]
		if len(p.Data) < blockSize {
			continue
		}
		data := p.Data
		if m.folded {
			data = patterns.Fold(data)
		}
		// Only the first m bytes of the pattern participate.
		for j := 0; j+blockSize <= m.m; j++ {
			idx := bitarr.Index2(data[j], data[j+1])
			s := uint16(m.m - blockSize - j)
			if s < m.shift[idx] {
				m.shift[idx] = s
			}
			if s == 0 {
				m.buckets[idx] = append(m.buckets[idx], p.ID)
			}
		}
	}
	return m
}

var _ engine.Engine = (*Matcher)(nil)

// NewScratch returns nil: Wu-Manber keeps no mutable scan state
// (engine.Engine).
func (m *Matcher) NewScratch() engine.Scratch { return nil }

// ScanScratch scans input, ignoring scr (engine.Engine).
func (m *Matcher) ScanScratch(_ engine.Scratch, input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	m.Scan(input, c, emit)
}

// WindowLen returns m, the effective window (minimum block-capable
// pattern length). It bounds the maximum skip distance m-1.
func (m *Matcher) WindowLen() int { return m.m }

// MemoryFootprint estimates the table bytes (shift + bucket headers).
func (m *Matcher) MemoryFootprint() int {
	sz := len(m.shift) * 2
	sz += len(m.buckets) * 24
	for _, b := range m.buckets {
		sz += len(b) * 4
	}
	return sz
}

// Scan reports every occurrence of every pattern in input.
func (m *Matcher) Scan(input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	if c != nil {
		c.BytesScanned += uint64(len(input))
	}
	if m.hasLen1 {
		m.scanLen1(input, c, emit)
	}
	if !m.hasBlock || len(input) < m.m {
		return
	}
	// Window [pos, pos+m); trailing block at pos+m-2.
	pos := 0
	limit := len(input) - m.m
	for pos <= limit {
		b0 := input[pos+m.m-2]
		b1 := input[pos+m.m-1]
		if m.folded {
			b0 = patterns.FoldByte(b0)
			b1 = patterns.FoldByte(b1)
		}
		idx := bitarr.Index2(b0, b1)
		if c != nil {
			c.Filter1Probes++ // shift-table probe
		}
		s := m.shift[idx]
		if s > 0 {
			pos += int(s)
			continue
		}
		if c != nil {
			c.HTProbes++
			c.LongCandidates++
		}
		for _, id := range m.buckets[idx] {
			p := m.set.Pattern(id)
			if c != nil {
				c.VerifyAttempts++
				c.VerifyBytes += uint64(len(p.Data))
			}
			if p.MatchesAt(input, pos) {
				if c != nil {
					c.Matches++
				}
				if emit != nil {
					emit(patterns.Match{PatternID: id, Pos: int32(pos)})
				}
			}
		}
		pos++
	}
}

// scanLen1 handles 1-byte patterns with a straight per-byte pass.
func (m *Matcher) scanLen1(input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	for i := 0; i < len(input); i++ {
		b := input[i]
		if m.folded {
			b = patterns.FoldByte(b)
		}
		ids := m.len1[b]
		if len(ids) == 0 {
			continue
		}
		for _, id := range ids {
			p := m.set.Pattern(id)
			if p.MatchesAt(input, i) {
				if c != nil {
					c.Matches++
				}
				if emit != nil {
					emit(patterns.Match{PatternID: id, Pos: int32(i)})
				}
			}
		}
	}
}
