// Package costmodel converts instrumented event counts into modeled
// throughput on the paper's two testbeds — the Haswell Xeon E5-2695 and
// the Xeon-Phi 3120 — standing in for hardware this reproduction cannot
// run on (pure Go has neither AVX2 intrinsics nor a Phi port).
//
// The model is deliberately simple and fully documented: every matcher
// counts its memory-touching and vector events (internal/metrics); the
// model charges each event a platform-dependent cycle cost derived from
// the platform's cache latencies, clock, vector width and pipeline style
// (out-of-order vs in-order). Modeled throughput = bytes*8*clock/cycles.
// The paper's qualitative results are *consequences* of these charges
// rather than hand-tuned outputs:
//
//   - AC pays one dependent access per byte; shallow (hot) automaton
//     states stay in L1, the rest miss with a probability that grows with
//     automaton size — so AC degrades as rule sets grow (Fig. 4a vs 4b)
//     and collapses on random input that constantly leaves the hot set.
//   - DFC/S-PATCH pay cheap, pipelinable L1 filter probes plus *long*
//     verifications that walk heap-resident hash tables — L3 traffic on
//     Haswell, device memory on Phi (no L3). That is why DFC loses to AC
//     on Phi's realistic traces (Fig. 7) while winning on Haswell
//     (Fig. 4), and why S-PATCH (far fewer long verifications) wins on
//     both.
//   - Vector algorithms replace W scalar probe+branch sequences with one
//     gather plus a few register ops, so their advantage scales with W
//     (8 on Haswell, 16 on Phi) and is larger on the in-order Phi, where
//     scalar loads and branches cannot overlap — the paper's headline
//     1.8x vs 3.6x.
//
// Calibration notes and per-figure paper-vs-model comparisons live in
// EXPERIMENTS.md.
package costmodel

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vpatch/internal/metrics"
)

// Platform holds the microarchitectural parameters of one testbed.
type Platform struct {
	Name     string
	ClockGHz float64
	// Vector width in 32-bit lanes.
	VectorLanes int
	// Cache capacities in bytes (L3Bytes = 0 means no L3, as on Phi).
	L1Bytes, L2Bytes, L3Bytes int
	// Load-to-use latencies in cycles.
	L1Lat, L2Lat, L3Lat, MemLat float64
	// ILP is the effective overlap factor for *independent* work: an
	// out-of-order core keeps several probes in flight, the in-order Phi
	// (ILP < 1) cannot even sustain one per cycle.
	ILP float64
	// BranchCost is the average per-probe branch/bookkeeping penalty of
	// the scalar filter loops.
	BranchCost float64
	// GatherLat is the effective cycle cost of one W-lane gather whose
	// elements hit the cache level holding the filters.
	GatherLat float64
	// VecOpLat is the cycle cost of one register-wide ALU/shuffle op.
	VecOpLat float64
	// ByteLoopOverhead is the scalar bookkeeping charged per scanned byte.
	ByteLoopOverhead float64
	// StoreCost is the cycle cost per candidate position for writing the
	// temporary array in the filtering round and re-reading it in the
	// verification round (the two-round algorithms only).
	StoreCost float64
	// SkipByteCost is the cycle cost per input byte cleared by the
	// skip-loop acceleration layer (the L1-resident viability bitmap
	// walk, or bytes.IndexByte in rare-byte mode — both far below the
	// probe chain's cost, which is the acceleration's whole point).
	// SkipInvokeCost is the fixed cost per skip invocation (setup,
	// mode dispatch, queue drain bookkeeping).
	SkipByteCost, SkipInvokeCost float64
	// MissBase / MissGrow parameterize the DFA hot-state model: the miss
	// fraction out of the hot set is MissBase at the last-level-cache
	// size and grows by MissGrow per doubling of the automaton beyond it.
	MissBase, MissGrow float64
}

// Haswell models the paper's Intel Xeon E5-2695 v3 (2.3 GHz, AVX2,
// 32 KB L1 / 256 KB L2 / 35 MB L3, out-of-order).
var Haswell = Platform{
	Name:        "Haswell",
	ClockGHz:    2.3,
	VectorLanes: 8,
	L1Bytes:     32 << 10, L2Bytes: 256 << 10, L3Bytes: 35 << 20,
	L1Lat: 4, L2Lat: 12, L3Lat: 40, MemLat: 200,
	ILP:              4.0,
	BranchCost:       2,
	GatherLat:        8,
	VecOpLat:         1,
	ByteLoopOverhead: 1.0,
	StoreCost:        4,
	SkipByteCost:     0.5, SkipInvokeCost: 3,
	MissBase: 0.12, MissGrow: 0.013,
}

// XeonPhi models the Xeon-Phi 3120 (1.1 GHz, 512-bit vectors, 32 KB L1 /
// 512 KB L2 per core, no L3, in-order).
var XeonPhi = Platform{
	Name:        "Xeon-Phi",
	ClockGHz:    1.1,
	VectorLanes: 16,
	L1Bytes:     32 << 10, L2Bytes: 512 << 10, L3Bytes: 0,
	L1Lat: 3, L2Lat: 24, L3Lat: 0, MemLat: 300,
	ILP:              0.6,
	BranchCost:       5,
	GatherLat:        10,
	VecOpLat:         1,
	ByteLoopOverhead: 2.0,
	StoreCost:        4,
	// In-order: the scalar bitmap walk cannot overlap its loads, but
	// the wide in-register compare of the memchr-class primitives still
	// amortizes well below probe cost.
	SkipByteCost: 1.0, SkipInvokeCost: 5,
	MissBase: 0.03, MissGrow: 0.029,
}

// verifyFloorBytes is the minimum effective size of the verification
// working set (hash tables + pattern data are heap-scattered), keeping
// long-verification traffic out of L1/L2 on every platform.
const verifyFloorBytes = 2 << 20

// latencyFor returns the load-to-use latency for a structure of the given
// size, by the cache level it fits in.
func (p *Platform) latencyFor(bytes int) float64 {
	switch {
	case bytes <= p.L1Bytes:
		return p.L1Lat
	case bytes <= p.L2Bytes:
		return p.L2Lat
	case p.L3Bytes > 0 && bytes <= p.L3Bytes:
		return p.L3Lat
	default:
		return p.MemLat
	}
}

// lastCacheBytes is the capacity of the last cache level.
func (p *Platform) lastCacheBytes() int {
	if p.L3Bytes > 0 {
		return p.L3Bytes
	}
	return p.L2Bytes
}

// probeCost is the per-probe cycle cost of the scalar filter loops:
// an L1 load plus branch work, overlapped by the pipeline.
func (p *Platform) probeCost() float64 { return (p.L1Lat + p.BranchCost) / p.ILP }

// dfaAccessCost models one dependent Aho-Corasick transition with a
// two-tier miss model: hot (shallow) states hit L1; a MissBase fraction
// spills to the last cache level; automatons larger than the last level
// additionally send a fraction growing with log2(size/lastLevel) to
// memory.
func (p *Platform) dfaAccessCost(dfaBytes int) float64 {
	if dfaBytes <= p.L2Bytes {
		return p.latencyFor(dfaBytes)
	}
	last := p.lastCacheBytes()
	missLast := p.MissBase
	missMem := 0.0
	if dfaBytes > last {
		missMem = p.MissGrow * math.Log2(float64(dfaBytes)/float64(last))
		if missMem > 0.6 {
			missMem = 0.6
		}
	}
	spill := p.MemLat
	if p.L3Bytes > 0 {
		spill = p.L3Lat
	} else {
		// No L3: the base spill already goes to memory.
		missMem += missLast
		missLast = 0
	}
	return (1-missLast-missMem)*p.L1Lat + missLast*spill + missMem*p.MemLat
}

// Kind identifies the algorithm family being modeled; it selects which
// event groups carry the cost.
type Kind int

const (
	KindAhoCorasick Kind = iota
	KindDFC
	KindVectorDFC
	KindSPatch
	KindVPatch
	KindWuManber
)

func (k Kind) String() string {
	switch k {
	case KindAhoCorasick:
		return "Aho-Corasick"
	case KindDFC:
		return "DFC"
	case KindVectorDFC:
		return "Vector-DFC"
	case KindSPatch:
		return "S-PATCH"
	case KindVPatch:
		return "V-PATCH"
	case KindWuManber:
		return "Wu-Manber"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Inputs bundles everything the model needs for one run.
type Inputs struct {
	Kind     Kind
	Counters *metrics.Counters
	// Structure sizes, deciding which cache level serves each access.
	DFABytes    int // AC transition structure
	FilterBytes int // filter stage (unused by the charge formulas today,
	// kept for analysis output)
	HTBytes int // verification hash tables
	// VectorWidth of the *measured* run (lanes). The model rescales
	// vector work to the platform's native width, so a W=8 measurement
	// can be projected onto the 16-lane Phi.
	VectorWidth int
}

// Result is the model's output.
type Result struct {
	Cycles float64
	Gbps   float64
	// Breakdown maps component name to cycles, for analysis output.
	Breakdown map[string]float64
}

// Estimate models one run on platform p.
func Estimate(p Platform, in Inputs) Result {
	c := in.Counters
	bd := make(map[string]float64)

	// Per-byte scan-loop bookkeeping; vector algorithms amortize it over
	// the register width.
	loop := float64(c.BytesScanned) * p.ByteLoopOverhead / p.ILP
	if in.Kind == KindVectorDFC || in.Kind == KindVPatch {
		loop /= float64(p.VectorLanes)
	}
	bd["loop"] = loop

	switch in.Kind {
	case KindAhoCorasick:
		// Dependent chain: no ILP overlap possible.
		bd["dfa"] = float64(c.DFAAccesses) * p.dfaAccessCost(in.DFABytes)

	case KindDFC, KindSPatch, KindWuManber:
		probes := float64(c.Filter1Probes + c.Filter2Probes + c.Filter3Probes)
		bd["filter"] = probes * p.probeCost()
		if in.Kind == KindSPatch {
			// Two-round structure: candidates are stored, then re-read.
			bd["stores"] = float64(c.ShortCandidates+c.LongCandidates) * p.StoreCost / p.ILP
		}

	case KindVectorDFC, KindVPatch:
		// Rescale the measured vector work to the platform's lanes: the
		// same positions need measuredW/platformW as many gathers/ops.
		scale := 1.0
		if in.VectorWidth > 0 {
			scale = float64(in.VectorWidth) / float64(p.VectorLanes)
		}
		bd["gather"] = float64(c.Gathers) * p.GatherLat * scale
		// Register ops per block: shuffles, shifts, mask logic,
		// movemask ≈ 8 ops, pipelined like other ALU work.
		bd["vecops"] = float64(c.VectorIters) * 8 * p.VecOpLat * scale / p.ILP
		// Batched (lane-per-packet) steps carry the same register work
		// plus cursor bookkeeping: per-lane advance, drain test and
		// refill mask updates ≈ 4 extra ops per step. Gathers issued by
		// batched steps are already in c.Gathers above.
		if c.BatchIters > 0 {
			bd["batch-vecops"] = float64(c.BatchIters) * (8 + 4) * p.VecOpLat * scale / p.ILP
		}
		if in.Kind == KindVectorDFC {
			// Inline scalar continuation after vector hits.
			bd["filter"] = float64(c.Filter2Probes+c.Filter3Probes) * p.probeCost()
		} else {
			bd["stores"] = float64(c.ShortCandidates+c.LongCandidates) * p.StoreCost / p.ILP
		}
	}

	// Skip-loop acceleration: bytes the accelerator cleared never paid
	// a probe (the probe counters already exclude them), so the model
	// charges the skip walk and the per-invocation overhead instead.
	// The instrumented paths skip with the same tables and predicate as
	// the production kernels but without the span governor or the DFC
	// minimum-input gate, so on traffic dense enough to trip those the
	// counters overstate skipping relative to the fused kernels — an
	// accepted approximation biased toward the clean-traffic regime the
	// layer targets. Counters from unaccelerated runs (the paper-figure
	// reproductions) have these at zero.
	if c.SkippedBytes > 0 || c.AccelChances > 0 {
		bd["accel"] = (float64(c.SkippedBytes)*p.SkipByteCost +
			float64(c.AccelChances)*p.SkipInvokeCost) / p.ILP
	}

	// Verification. Both short and long candidates perform dependent
	// probes into heap-resident tables (direct-address tables for 1-3 B
	// patterns, compact hash tables + pattern data for >= 4 B). Short
	// probes touch roughly half the chain of a long verification.
	htBytes := in.HTBytes
	if htBytes < verifyFloorBytes {
		htBytes = verifyFloorBytes
	}
	bd["verify-short"] = float64(c.ShortCandidates) * p.latencyFor(htBytes) / 1.6
	bd["verify-long"] = float64(c.LongCandidates) * p.latencyFor(htBytes)
	bd["compare"] = (float64(c.VerifyBytes)/4 + float64(c.VerifyAttempts)*2) / p.ILP

	total := 0.0
	for _, v := range bd {
		total += v
	}
	gbps := 0.0
	if total > 0 {
		gbps = float64(c.BytesScanned) * 8 * p.ClockGHz / total
	}
	return Result{Cycles: total, Gbps: gbps, Breakdown: bd}
}

// VerifierPrice is the modeled cycle charge for one unit of rule-tier
// verifier work, derived from a platform's latencies. The overload
// layer (internal/resil) prices every anchored verification against
// per-flow and per-tenant budgets denominated in these cycles, so a
// match-flood attacker buys exactly as much DFA work as the budget
// allows and not a cycle more. All three charges are integers so the
// hot path can price a batch with two multiplies and an add.
type VerifierPrice struct {
	// PerRun is the fixed charge per verification started at a
	// literal-hit anchor: setup plus the anchored window walked through
	// L1-resident DFA rows.
	PerRun int64
	// PerState is the charge per lazy-DFA state constructed — the
	// cache-cold NFA-set chase that crafted anchors try to force over
	// and over; it dominates under attack.
	PerState int64
	// PerHit is the charge per anchor hit processed (clause-state
	// bookkeeping bytes appended and re-read).
	PerHit int64
}

// VerifierPrice derives the rule-tier verifier charges from the
// platform parameters.
func (p *Platform) VerifierPrice() VerifierPrice {
	// A typical anchored run walks a short window of bytes through
	// already-built rows (dependent L1 loads), after fixed dispatch and
	// clause-window setup.
	const runWindowBytes = 64
	run := runWindowBytes*p.L1Lat/p.ILP + 5*p.BranchCost
	// State construction is heap-scattered pointer chasing.
	state := p.MemLat
	hit := (2*p.L1Lat + p.BranchCost) / p.ILP
	return VerifierPrice{
		PerRun:   int64(math.Ceil(run)),
		PerState: int64(math.Ceil(state)),
		PerHit:   int64(math.Ceil(hit)),
	}
}

// Cost prices a batch of verifier work in modeled cycles.
func (v VerifierPrice) Cost(runs, states, hits uint64) int64 {
	return int64(runs)*v.PerRun + int64(states)*v.PerState + int64(hits)*v.PerHit
}

// BreakdownString formats the component cycles largest-first.
func (r Result) BreakdownString() string {
	type kv struct {
		k string
		v float64
	}
	var items []kv
	for k, v := range r.Breakdown {
		items = append(items, kv{k, v})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v > items[j].v })
	var b strings.Builder
	for i, it := range items {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%.2g", it.k, it.v)
	}
	return b.String()
}
