package costmodel

import (
	"math"
	"strings"
	"testing"

	"vpatch/internal/metrics"
)

func TestLatencyForLevels(t *testing.T) {
	p := Haswell
	cases := []struct {
		bytes int
		want  float64
	}{
		{1 << 10, p.L1Lat},
		{32 << 10, p.L1Lat},
		{33 << 10, p.L2Lat},
		{256 << 10, p.L2Lat},
		{1 << 20, p.L3Lat},
		{35 << 20, p.L3Lat},
		{64 << 20, p.MemLat},
	}
	for _, c := range cases {
		if got := p.latencyFor(c.bytes); got != c.want {
			t.Errorf("latencyFor(%d) = %v, want %v", c.bytes, got, c.want)
		}
	}
}

func TestPhiHasNoL3(t *testing.T) {
	// On Phi anything beyond L2 pays device-memory latency.
	if got := XeonPhi.latencyFor(1 << 20); got != XeonPhi.MemLat {
		t.Fatalf("Phi 1MB latency %v, want MemLat %v", got, XeonPhi.MemLat)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindAhoCorasick: "Aho-Corasick", KindDFC: "DFC", KindVectorDFC: "Vector-DFC",
		KindSPatch: "S-PATCH", KindVPatch: "V-PATCH", KindWuManber: "Wu-Manber",
	} {
		if k.String() != want {
			t.Errorf("Kind %d = %q", k, k.String())
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must format")
	}
}

func TestEstimateZeroCountersZeroCycles(t *testing.T) {
	r := Estimate(Haswell, Inputs{Kind: KindDFC, Counters: &metrics.Counters{}})
	if r.Cycles != 0 || r.Gbps != 0 {
		t.Fatalf("zero input produced cycles=%v gbps=%v", r.Cycles, r.Gbps)
	}
}

func TestACCostGrowsWithAutomatonSize(t *testing.T) {
	c := &metrics.Counters{BytesScanned: 1 << 20, DFAAccesses: 1 << 20}
	small := Estimate(Haswell, Inputs{Kind: KindAhoCorasick, Counters: c, DFABytes: 128 << 10})
	big := Estimate(Haswell, Inputs{Kind: KindAhoCorasick, Counters: c, DFABytes: 512 << 20})
	if big.Gbps >= small.Gbps {
		t.Fatalf("bigger automaton must be slower: small %.2f big %.2f", small.Gbps, big.Gbps)
	}
}

func TestVerificationCostsMoreOnPhi(t *testing.T) {
	// Same counters, same (L3-sized) tables: Phi must charge memory
	// latency where Haswell charges L3 — the crossover driver of Fig. 7.
	c := &metrics.Counters{BytesScanned: 1 << 20, LongCandidates: 100000, Filter1Probes: 1 << 20}
	in := Inputs{Kind: KindDFC, Counters: c, FilterBytes: 16 << 10, HTBytes: 4 << 20}
	hw := Estimate(Haswell, in)
	phi := Estimate(XeonPhi, in)
	if phi.Breakdown["verify-long"] <= hw.Breakdown["verify-long"] {
		t.Fatalf("verify-long cycles: phi %.0f <= haswell %.0f",
			phi.Breakdown["verify-long"], hw.Breakdown["verify-long"])
	}
	ratio := phi.Breakdown["verify-long"] / hw.Breakdown["verify-long"]
	if ratio != XeonPhi.MemLat/Haswell.L3Lat {
		t.Fatalf("verify-long ratio %.2f, want MemLat/L3Lat = %.2f",
			ratio, XeonPhi.MemLat/Haswell.L3Lat)
	}
}

func TestDFAModelDegradesOnMissGrowth(t *testing.T) {
	// Hot-state model: cost at 2x last-level cache must exceed cost at
	// exactly the last-level size, by MissGrow worth of spill latency.
	p := Haswell
	atL3 := p.dfaAccessCost(p.L3Bytes)
	at2x := p.dfaAccessCost(2 * p.L3Bytes)
	if at2x <= atL3 {
		t.Fatalf("no degradation beyond L3: %v vs %v", atL3, at2x)
	}
	// Miss fraction is capped (MaxInt: portable to 32-bit GOARCHes).
	huge := p.dfaAccessCost(math.MaxInt)
	if huge > 0.6*p.MemLat+p.L1Lat {
		t.Fatalf("miss cap not applied: %v", huge)
	}
}

func TestSPatchChargedForStores(t *testing.T) {
	c := &metrics.Counters{BytesScanned: 1 << 20, ShortCandidates: 1000, LongCandidates: 100}
	sp := Estimate(Haswell, Inputs{Kind: KindSPatch, Counters: c})
	d := Estimate(Haswell, Inputs{Kind: KindDFC, Counters: c})
	if sp.Breakdown["stores"] == 0 {
		t.Fatal("S-PATCH must pay for candidate stores")
	}
	if d.Breakdown["stores"] != 0 {
		t.Fatal("inline DFC must not pay store costs")
	}
}

func TestVectorRescalingToWiderPlatform(t *testing.T) {
	// A W=8 measurement projected on a 16-lane platform should halve the
	// gather and vec-op cycles.
	c := &metrics.Counters{BytesScanned: 1 << 20, Gathers: 100000, VectorIters: 100000}
	in := Inputs{Kind: KindVPatch, Counters: c, VectorWidth: 8, FilterBytes: 16 << 10}
	r8on8 := Estimate(Haswell, in) // Haswell is 8 lanes: scale 1
	r8on16 := Estimate(XeonPhi, in)
	wantGather := r8on8.Breakdown["gather"] / 2 * (XeonPhi.GatherLat / Haswell.GatherLat)
	if diff := r8on16.Breakdown["gather"] - wantGather; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("phi gather cycles %.1f, want %.1f", r8on16.Breakdown["gather"], wantGather)
	}
}

func TestVPatchBeatsSPatchWhenFilteringDominates(t *testing.T) {
	// Construct counters for the same workload: scalar probes ~3/byte vs
	// one gather per W positions. The model must prefer the vector run on
	// both platforms, more strongly on Phi.
	bytes := uint64(1 << 20)
	scalar := &metrics.Counters{
		BytesScanned:  bytes,
		Filter1Probes: bytes, Filter2Probes: bytes, Filter3Probes: bytes / 10,
		HTProbes: bytes / 100, VerifyBytes: bytes / 50, VerifyAttempts: bytes / 100,
	}
	vector := &metrics.Counters{
		BytesScanned: bytes,
		Gathers:      bytes/8 + bytes/80, VectorIters: bytes / 8,
		MergedGathers: bytes / 8,
		HTProbes:      bytes / 100, VerifyBytes: bytes / 50, VerifyAttempts: bytes / 100,
		ShortCandidates: bytes / 200, LongCandidates: bytes / 500,
	}
	sIn := Inputs{Kind: KindSPatch, Counters: scalar, FilterBytes: 32 << 10, HTBytes: 4 << 20}
	vIn := Inputs{Kind: KindVPatch, Counters: vector, FilterBytes: 32 << 10, HTBytes: 4 << 20, VectorWidth: 8}

	hwS, hwV := Estimate(Haswell, sIn), Estimate(Haswell, vIn)
	phiS, phiV := Estimate(XeonPhi, sIn), Estimate(XeonPhi, vIn)
	if hwV.Gbps <= hwS.Gbps {
		t.Fatalf("Haswell: V-PATCH %.2f <= S-PATCH %.2f", hwV.Gbps, hwS.Gbps)
	}
	if phiV.Gbps <= phiS.Gbps {
		t.Fatalf("Phi: V-PATCH %.2f <= S-PATCH %.2f", phiV.Gbps, phiS.Gbps)
	}
	hwSpeedup := hwV.Gbps / hwS.Gbps
	phiSpeedup := phiV.Gbps / phiS.Gbps
	if phiSpeedup <= hwSpeedup {
		t.Fatalf("vectorization speedup must be larger on Phi: haswell %.2f, phi %.2f",
			hwSpeedup, phiSpeedup)
	}
}

func TestGbpsScalesWithClock(t *testing.T) {
	c := &metrics.Counters{BytesScanned: 1 << 20, Filter1Probes: 1 << 20}
	in := Inputs{Kind: KindDFC, Counters: c, FilterBytes: 8 << 10}
	slow := Haswell
	slow.ClockGHz = 1.15
	fast := Estimate(Haswell, in)
	half := Estimate(slow, in)
	ratio := fast.Gbps / half.Gbps
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("halving the clock must halve throughput; ratio %.3f", ratio)
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	c := &metrics.Counters{
		BytesScanned: 1 << 20, Gathers: 1 << 17, VectorIters: 1 << 17,
		HTProbes: 1000, VerifyBytes: 5000, VerifyAttempts: 500,
		ShortCandidates: 2000, LongCandidates: 100,
	}
	r := Estimate(Haswell, Inputs{Kind: KindVPatch, Counters: c, VectorWidth: 8})
	sum := 0.0
	for _, v := range r.Breakdown {
		sum += v
	}
	if diff := sum - r.Cycles; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("breakdown sum %.2f != total %.2f", sum, r.Cycles)
	}
}

func TestBreakdownStringOrdered(t *testing.T) {
	r := Result{Breakdown: map[string]float64{"small": 1, "big": 100}}
	s := r.BreakdownString()
	if !strings.HasPrefix(s, "big=") {
		t.Fatalf("breakdown not sorted: %q", s)
	}
}

func TestHaswellParametersSane(t *testing.T) {
	for _, p := range []Platform{Haswell, XeonPhi} {
		if p.L1Lat >= p.L2Lat || p.L2Lat >= p.MemLat {
			t.Fatalf("%s: latency ordering broken", p.Name)
		}
		if p.ClockGHz <= 0 || p.VectorLanes <= 0 || p.ILP <= 0 {
			t.Fatalf("%s: non-positive parameter", p.Name)
		}
	}
	if Haswell.VectorLanes != 8 || XeonPhi.VectorLanes != 16 {
		t.Fatal("paper platform widths wrong")
	}
	if XeonPhi.L3Bytes != 0 {
		t.Fatal("Phi must have no L3")
	}
	if XeonPhi.ILP >= Haswell.ILP {
		t.Fatal("in-order Phi must have lower ILP than OOO Haswell")
	}
}

func TestSkipLoopPricing(t *testing.T) {
	// An accelerated run replaces probe work with cheap skip work: for
	// the same input volume, a run where the accelerator cleared most
	// positions must model faster than one that probed them all, and
	// the skip charge must appear in the breakdown.
	bytes := uint64(1 << 20)
	plain := &metrics.Counters{
		BytesScanned:  bytes,
		Filter1Probes: bytes, Filter2Probes: bytes,
	}
	accel := &metrics.Counters{
		BytesScanned:  bytes,
		Filter1Probes: bytes / 10, Filter2Probes: bytes / 10,
		SkippedBytes: bytes * 9 / 10, AccelChances: bytes / 100, AccelRuns: bytes / 200,
	}
	in := func(c *metrics.Counters) Inputs {
		return Inputs{Kind: KindSPatch, Counters: c, FilterBytes: 24 << 10, HTBytes: 4 << 20}
	}
	p := Estimate(Haswell, in(plain))
	a := Estimate(Haswell, in(accel))
	if a.Gbps <= p.Gbps {
		t.Fatalf("accelerated run must model faster: accel %.2f <= plain %.2f", a.Gbps, p.Gbps)
	}
	if a.Breakdown["accel"] <= 0 {
		t.Fatalf("skip loop not priced: %v", a.Breakdown)
	}
	if p.Breakdown["accel"] != 0 {
		t.Fatalf("unaccelerated run must not be charged for skipping: %v", p.Breakdown)
	}
	// The whole point of the layer: a skipped byte must cost less than
	// the probes it displaces on both platforms.
	for _, pl := range []Platform{Haswell, XeonPhi} {
		if pl.SkipByteCost >= 2*pl.probeCost()*pl.ILP {
			t.Fatalf("%s: skip byte cost %.2f not below displaced probe cost", pl.Name, pl.SkipByteCost)
		}
	}
}
