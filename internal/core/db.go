package core

import (
	"vpatch/internal/dbfmt"
	"vpatch/internal/engine"
	"vpatch/internal/filters"
	"vpatch/internal/hashtab"
	"vpatch/internal/patterns"
	"vpatch/internal/vec"
)

// Compiled-database serialization for S-PATCH and V-PATCH: the shared
// filter stage and verification tables, plus V-PATCH's vector width and
// ablation switches (which change scan behavior, so a database must
// reproduce them exactly).

var (
	_ engine.DBCodec = (*SPatch)(nil)
	_ engine.DBCodec = (*VPatch)(nil)
)

// maxChunkSize bounds the deserialized filtering-round chunk size; the
// paper's design wants chunks cache-sized, so anything beyond 1 GB is a
// corrupt database, not a configuration.
const maxChunkSize = 1 << 30

func (m *common) encodeCommon(e *dbfmt.Encoder) {
	e.U32(uint32(m.chunk))
	m.fs.Encode(e)
	m.verifier.Encode(e)
}

func decodeCommon(d *dbfmt.Decoder, set *patterns.Set) common {
	chunk := int(d.U32())
	if d.Err() == nil && (chunk < 1 || chunk > maxChunkSize) {
		d.Fail("chunk size %d out of range [1,%d]", chunk, maxChunkSize)
	}
	fs := filters.DecodeSPatch(d)
	verifier := hashtab.DecodeVerifier(d, set)
	c := common{set: set, fs: fs, verifier: verifier, chunk: chunk}
	if fs != nil {
		// The acceleration table is derived state: rebuild it from the
		// decoded filters instead of trusting (or storing) it — loaded
		// engines accelerate exactly like compiled ones, with no
		// database format change.
		c.buildAccel()
	}
	// The extract kernel is host state, never stored: re-dispatch from
	// CPUID on the loading host (this is the Deserialize half of the
	// Compile/Deserialize-time selection).
	c.setKernel(vec.KernelAuto)
	return c
}

// EncodeCompiled appends S-PATCH's compiled state (engine.DBCodec).
func (m *SPatch) EncodeCompiled(e *dbfmt.Encoder) {
	m.encodeCommon(e)
}

// DecodeSPatch restores an S-PATCH engine over set.
func DecodeSPatch(d *dbfmt.Decoder, set *patterns.Set) (*SPatch, error) {
	c := decodeCommon(d, set)
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return &SPatch{common: c}, nil
}

// EncodeCompiled appends V-PATCH's compiled state (engine.DBCodec).
func (m *VPatch) EncodeCompiled(e *dbfmt.Encoder) {
	e.U8(uint8(m.eng.Width()))
	e.Bool(m.opt.NoFilterMerge)
	e.Bool(m.opt.NoUnroll)
	e.Bool(m.opt.BranchyFilter3)
	e.Bool(m.opt.ForceEngine)
	m.encodeCommon(e)
}

// DecodeVPatch restores a V-PATCH engine over set.
func DecodeVPatch(d *dbfmt.Decoder, set *patterns.Set) (*VPatch, error) {
	w := int(d.U8())
	opt := VOptions{
		NoFilterMerge:  d.Bool(),
		NoUnroll:       d.Bool(),
		BranchyFilter3: d.Bool(),
		ForceEngine:    d.Bool(),
	}
	if d.Err() == nil && w != 4 && w != 8 && w != 16 {
		d.Fail("vector width %d not supported (want 4, 8 or 16)", w)
	}
	c := decodeCommon(d, set)
	if err := d.Finish(); err != nil {
		return nil, err
	}
	opt.Width = w
	return &VPatch{common: c, eng: vec.New(w), opt: opt}, nil
}

// MemoryFootprint reports resident bytes of the compiled state: the
// filter stage plus the verification tables (engine.Sizer).
func (m *common) MemoryFootprint() int {
	return m.fs.SizeBytes() + m.verifier.MemoryFootprint()
}
