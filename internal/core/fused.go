package core

import (
	"encoding/binary"

	"vpatch/internal/accel"
	"vpatch/internal/bitarr"
	"vpatch/internal/vec"
)

// The fused production kernels of the filtering round, shared by the
// serial scan, FilterOnly and the batch scan. Timing runs (nil
// counters, paper configuration) execute these instead of the per-op
// emulated vector engine; candidate output is bit-identical either way
// (property-tested against ForceEngine).
//
// Two layers compose here:
//
//   - The *plain* kernels restate the probe chain as SWAR-friendly
//     code: one binary.LittleEndian.Uint64 load feeds the window
//     formations of 5 consecutive positions (both the 2-byte filter
//     index and the 4-byte filter-3 value of positions i..i+4 are
//     shifts of the same register), slice headers are hoisted to
//     fixed-size array pointers, and indexes are masked so the
//     compiler can prove them in bounds (audited with
//     -d=ssa/check_bce; see the note at the bottom of this file).
//
//   - The *accelerated* kernels put a skip loop in front of the probe
//     chain, driven by the accel.Table derived from the merged
//     filter-1/2 state at compile time. In window-bitmap mode the skip
//     is branchless: each 8-byte register yields 5 viability bits from
//     the L1-resident union bitmap (the probe chain's own 64 KB merged
//     table thrashes L1; the 8 KB union bitmap does not), and viable
//     positions are compacted into a small scratch-resident queue with
//     prefix-sum stores — no data-dependent branch on the miss path at
//     all — then drained through the probe chain at a cache-sized
//     watermark. In index-byte mode (<= 2 possible start bytes) the
//     skip is the runtime's assembly-backed bytes.IndexByte. A
//     checkpoint governor (accel.SpanBytes/PlainBytes) measures the
//     viable fraction per span and drops to the plain kernel when the
//     traffic is too dense for skipping to pay, so match-heavy input
//     costs at most a few percent over the plain path.
//
// The V-PATCH (merged-filter word fetch) and S-PATCH (split filter-1/
// filter-2 probes) renditions are kept textually parallel; they differ
// only in the probe chain. Keep them in lockstep.

// mergedWords returns the merged filter storage as a fixed-size array
// pointer: the 2^16-bit direct-filter domain always interleaves into
// exactly 8192 words (enforced at database decode too), and the fixed
// size lets the compiler drop bounds checks for idx&0xffff-derived
// indexes.
func (m *common) mergedWords() *[8192]uint16 {
	return (*[8192]uint16)(m.fs.Merged.Words())
}

// filterBytes converts an 8 KB direct-filter byte array likewise.
func filterBytes(b []byte) *[8192]byte { return (*[8192]byte)(b) }

// buildAccel derives the acceleration table from the merged filter-1/2
// state. Called at compile time and again after database decode (the
// table is derived state and is not serialized — no format bump).
func (m *common) buildAccel() {
	mf := m.fs.Merged
	m.accel = accel.Build(func(idx uint32) bool {
		f1, f2 := mf.Test(idx)
		return f1 || f2
	})
}

// setKernel resolves the extract-loop kernel once, at compile or
// database-decode time: the CPUID-gated dispatch of the ISSUE's native
// kernels. The choice is host state, not compiled state — databases
// never serialize it, so a .vpdb moved between hosts re-dispatches.
func (m *common) setKernel(force vec.KernelID) {
	k := vec.KernelSWAR
	if m.accel != nil {
		k = m.accel.SelectKernel(force)
	} else if force != vec.KernelAuto && vec.Available(force) {
		k = force
	}
	m.kern = k
	m.kblock, m.klook = accel.Geometry(k)
}

// KernelInfo reports the resolved extract kernel
// (engine.KernelReporter).
func (m *common) KernelInfo() string { return m.kern.String() }

// AccelInfo reports the engine's acceleration configuration
// (engine.AccelReporter).
func (m *common) AccelInfo() accel.Info {
	if m.accel == nil {
		return accel.Info{Mode: "off"}
	}
	inf := m.accel.Info()
	if m.noAccel {
		inf.Enabled = false
		inf.Mode = "off"
	}
	return inf
}

// accelOn reports whether the fused kernels should use the skip loop.
func (m *common) accelOn() bool {
	return m.accel != nil && !m.noAccel && m.accel.Enabled()
}

// probeMerged runs the V-PATCH probe chain for one position with a full
// 4-byte window in range (p <= len(input)-4): merged filter-1/2 word
// fetch, speculative hashed filter-3 probe.
func (m *common) probeMerged(scr *Scratch, input []byte, p int, stores bool) {
	words := m.mergedWords()
	f3 := m.fs.Filter3.Bytes()
	f3mask := uint32(len(f3) - 1)
	shift := m.fs.Filter3.Shift()
	v4 := binary.LittleEndian.Uint32(input[p:])
	idx := v4 & 0xffff
	wd := words[(idx>>3)&8191]
	bit := idx & 7
	if wd&(1<<bit) != 0 {
		if stores {
			scr.aShort = append(scr.aShort, int32(p))
		} else {
			scr.sink ^= uint32(p)
		}
	}
	if wd&(1<<(bit+8)) != 0 {
		key := (v4 * bitarr.MulHashConst) >> shift
		if f3[(key>>3)&f3mask]&(1<<(key&7)) != 0 {
			if stores {
				scr.aLong = append(scr.aLong, int32(p))
			} else {
				scr.sink ^= uint32(p) << 8
			}
		}
	}
}

// probeSplit is the S-PATCH rendition: separate filter-1 and filter-2
// byte probes (the scalar algorithm performs two lookups per position;
// merging them is V-PATCH's optimization and would quietly change what
// the S-PATCH figures measure).
func (m *common) probeSplit(scr *Scratch, input []byte, p int) {
	f1 := filterBytes(m.fs.Filter1.Bytes())
	f2 := filterBytes(m.fs.Filter2.Bytes())
	f3 := m.fs.Filter3.Bytes()
	f3mask := uint32(len(f3) - 1)
	shift := m.fs.Filter3.Shift()
	v4 := binary.LittleEndian.Uint32(input[p:])
	idx := v4 & 0xffff
	bit := idx & 7
	if f1[(idx>>3)&8191]&(1<<bit) != 0 {
		scr.aShort = append(scr.aShort, int32(p))
	}
	if f2[(idx>>3)&8191]&(1<<bit) != 0 {
		key := (v4 * bitarr.MulHashConst) >> shift
		if f3[(key>>3)&f3mask]&(1<<(key&7)) != 0 {
			scr.aLong = append(scr.aLong, int32(p))
		}
	}
}

// fusedRangeMerged is the V-PATCH fused filtering round over positions
// [start, end): skip loop (when profitable), SWAR probe chain, scalar
// tail for the final sub-window positions. Reads may extend up to 3
// bytes past end (within input), exactly like the scalar algorithm.
func (m *common) fusedRangeMerged(scr *Scratch, input []byte, start, end int, stores bool) {
	n := len(input)
	mainEnd := end
	if n-3 < mainEnd {
		mainEnd = n - 3 // positions with a full 4-byte window in range
	}
	if mainEnd < start {
		mainEnd = start
	}
	i := start
	if m.accelOn() {
		if m.accel.Mode() == accel.ModeIndexByte {
			m.accelIndexRangeMerged(scr, input, i, mainEnd, stores)
		} else {
			m.accelWindowRangeMerged(scr, input, i, mainEnd, stores)
		}
	} else {
		m.plainRangeMerged(scr, input, i, mainEnd, stores)
	}
	// Positions with fewer than 4 bytes left: scalar chain with guards.
	for i = mainEnd; i < end; i++ {
		m.scalarFilterPos(scr, input, i, n, nil)
	}
}

// plainRangeMerged is the unaccelerated V-PATCH probe loop over
// [i, end), end <= len(input)-3: one 8-byte load feeds the window
// formations of 5 consecutive positions.
func (m *common) plainRangeMerged(scr *Scratch, input []byte, i, end int, stores bool) {
	words := m.mergedWords()
	f3 := m.fs.Filter3.Bytes()
	f3mask := uint32(len(f3) - 1)
	shift := m.fs.Filter3.Shift()
	packEnd := end - 5
	if lim := len(input) - 8; lim < packEnd {
		packEnd = lim
	}
	for ; i <= packEnd; i += 5 {
		v := binary.LittleEndian.Uint64(input[i:])
		idx := uint32(v) & 0xffff
		wd := words[(idx>>3)&8191]
		bit := idx & 7
		if wd&(1<<bit) != 0 {
			if stores {
				scr.aShort = append(scr.aShort, int32(i))
			} else {
				scr.sink ^= uint32(i)
			}
		}
		if wd&(1<<(bit+8)) != 0 {
			key := (uint32(v) * bitarr.MulHashConst) >> shift
			if f3[(key>>3)&f3mask]&(1<<(key&7)) != 0 {
				if stores {
					scr.aLong = append(scr.aLong, int32(i))
				} else {
					scr.sink ^= uint32(i) << 8
				}
			}
		}
		idx = uint32(v>>8) & 0xffff
		wd = words[(idx>>3)&8191]
		bit = idx & 7
		if wd&(1<<bit) != 0 {
			if stores {
				scr.aShort = append(scr.aShort, int32(i+1))
			} else {
				scr.sink ^= uint32(i + 1)
			}
		}
		if wd&(1<<(bit+8)) != 0 {
			key := (uint32(v>>8) * bitarr.MulHashConst) >> shift
			if f3[(key>>3)&f3mask]&(1<<(key&7)) != 0 {
				if stores {
					scr.aLong = append(scr.aLong, int32(i+1))
				} else {
					scr.sink ^= uint32(i+1) << 8
				}
			}
		}
		idx = uint32(v>>16) & 0xffff
		wd = words[(idx>>3)&8191]
		bit = idx & 7
		if wd&(1<<bit) != 0 {
			if stores {
				scr.aShort = append(scr.aShort, int32(i+2))
			} else {
				scr.sink ^= uint32(i + 2)
			}
		}
		if wd&(1<<(bit+8)) != 0 {
			key := (uint32(v>>16) * bitarr.MulHashConst) >> shift
			if f3[(key>>3)&f3mask]&(1<<(key&7)) != 0 {
				if stores {
					scr.aLong = append(scr.aLong, int32(i+2))
				} else {
					scr.sink ^= uint32(i+2) << 8
				}
			}
		}
		idx = uint32(v>>24) & 0xffff
		wd = words[(idx>>3)&8191]
		bit = idx & 7
		if wd&(1<<bit) != 0 {
			if stores {
				scr.aShort = append(scr.aShort, int32(i+3))
			} else {
				scr.sink ^= uint32(i + 3)
			}
		}
		if wd&(1<<(bit+8)) != 0 {
			key := (uint32(v>>24) * bitarr.MulHashConst) >> shift
			if f3[(key>>3)&f3mask]&(1<<(key&7)) != 0 {
				if stores {
					scr.aLong = append(scr.aLong, int32(i+3))
				} else {
					scr.sink ^= uint32(i+3) << 8
				}
			}
		}
		idx = uint32(v>>32) & 0xffff
		wd = words[(idx>>3)&8191]
		bit = idx & 7
		if wd&(1<<bit) != 0 {
			if stores {
				scr.aShort = append(scr.aShort, int32(i+4))
			} else {
				scr.sink ^= uint32(i + 4)
			}
		}
		if wd&(1<<(bit+8)) != 0 {
			key := (uint32(v>>32) * bitarr.MulHashConst) >> shift
			if f3[(key>>3)&f3mask]&(1<<(key&7)) != 0 {
				if stores {
					scr.aLong = append(scr.aLong, int32(i+4))
				} else {
					scr.sink ^= uint32(i+4) << 8
				}
			}
		}
	}
	for ; i < end; i++ {
		m.probeMerged(scr, input, i, stores)
	}
}

// accelWindowRangeMerged processes [start, mainEnd) with the branchless
// window-bitmap skip: the resolved kernel (accel.ExtractKernel —
// assembly classifiers on capable hosts, the SWAR pack loop otherwise)
// compacts viable positions into the scratch queue, and the probe chain
// drains it at the queue watermark. The loop runs in *bursts* sized so
// that neither the queue (block stores per step) nor the governor
// checkpoint can trip inside one — the burst interior has no
// data-dependent branches at all. A checkpoint every accel.SpanBytes
// evaluates the viable fraction and falls back to the plain kernel for
// accel.PlainBytes when skipping stops paying. When a wide kernel runs
// out of full blocks (or read lookahead), a second pass sweeps the
// remainder with SWAR geometry over the same queue and governor state,
// so short buffers and range tails cost exactly what they did before
// the native kernels existed. mainEnd <= len(input)-3.
func (m *common) accelWindowRangeMerged(scr *Scratch, input []byte, start, mainEnd int, stores bool) {
	t := m.accel
	q := &scr.aq
	w := 0
	i := start
	checkAt := i + accel.SpanBytes
	spanStart := i
	drained := 0 // viable positions drained since spanStart
	kern, blk, look := m.kern, m.kblock, m.klook
	for {
		packEnd := mainEnd - blk
		if lim := len(input) - look; lim < packEnd {
			packEnd = lim
		}
		for i <= packEnd {
			// Bound the burst by queue room (blk stores per block) and
			// the governor checkpoint.
			room := (accel.QueueLen - blk - w) / blk // blocks until possible overflow
			if room == 0 {
				drained += w
				m.drainMerged(scr, input, q[:w], stores)
				w = 0
				continue
			}
			// limit is the last allowed block start: capped by queue
			// room, the range end, and the checkpoint (a block may start
			// at checkAt, so i always crosses it — forward progress).
			limit := i + (room-1)*blk
			if packEnd < limit {
				limit = packEnd
			}
			if checkAt < limit {
				limit = checkAt
			}
			i, w = t.ExtractKernel(kern, input, i, limit, q, w)
			if w >= accel.QueueLen-blk {
				drained += w
				m.drainMerged(scr, input, q[:w], stores)
				w = 0
			}
			if i >= checkAt {
				// Governor checkpoint: the queue content counts toward
				// the span's viable positions without being drained (it
				// carries across accelerated spans).
				if !accel.KeepAccel(drained+w, i-spanStart) {
					drained += w
					m.drainMerged(scr, input, q[:w], stores)
					w = 0
					plainEnd := i + accel.PlainBytes
					if plainEnd > mainEnd {
						plainEnd = mainEnd
					}
					m.plainRangeMerged(scr, input, i, plainEnd, stores)
					i = plainEnd
				}
				spanStart = i
				drained = 0
				checkAt = i + accel.SpanBytes
			}
		}
		if kern == vec.KernelSWAR {
			break
		}
		kern, blk, look = vec.KernelSWAR, 5, 8 // SWAR finish pass
	}
	m.drainMerged(scr, input, q[:w], stores)
	// Remainder: fewer than 8 loadable bytes left; probe per position.
	for ; i < mainEnd; i++ {
		m.probeMerged(scr, input, i, stores)
	}
}

// accelIndexRangeMerged processes [start, mainEnd) with bytes.IndexByte
// skipping over the rare start-byte list, with the same governor. Hits
// funnel through the queue and the table-hoisted drain (position order
// preserved) instead of paying per-position table setup.
// mainEnd <= len(input)-3.
func (m *common) accelIndexRangeMerged(scr *Scratch, input []byte, start, mainEnd int, stores bool) {
	t := m.accel
	q := &scr.aq
	i := start
	for i < mainEnd {
		spanEnd := i + accel.SpanBytes
		if spanEnd > mainEnd {
			spanEnd = mainEnd
		}
		spanLen := spanEnd - i
		viable := 0
		w := 0
		for i < spanEnd {
			j := t.Next(input, i, spanEnd)
			i = j
			if i >= spanEnd {
				break
			}
			viable++
			q[w&accel.QueueMask] = int32(i)
			w++
			if w >= accel.QueueLen {
				m.drainMerged(scr, input, q[:w], stores)
				w = 0
			}
			i++
		}
		m.drainMerged(scr, input, q[:w], stores)
		if !accel.KeepAccelIndex(viable, spanLen) {
			plainEnd := i + accel.PlainBytes
			if plainEnd > mainEnd {
				plainEnd = mainEnd
			}
			m.plainRangeMerged(scr, input, i, plainEnd, stores)
			i = plainEnd
		}
	}
}

// drainMerged replays queued viable positions through the V-PATCH probe
// chain, in position order. One 4-byte load per position serves both
// window formations; filter 3 is only consulted behind the filter-2
// bit, exactly like the plain chain.
func (m *common) drainMerged(scr *Scratch, input []byte, q []int32, stores bool) {
	words := m.mergedWords()
	f3 := m.fs.Filter3.Bytes()
	f3mask := uint32(len(f3) - 1)
	shift := m.fs.Filter3.Shift()
	for _, p := range q {
		pp := int(p)
		v4 := binary.LittleEndian.Uint32(input[pp:])
		idx := v4 & 0xffff
		wd := words[(idx>>3)&8191]
		bit := idx & 7
		if wd&(1<<bit) != 0 {
			if stores {
				scr.aShort = append(scr.aShort, p)
			} else {
				scr.sink ^= uint32(pp)
			}
		}
		if wd&(1<<(bit+8)) != 0 {
			key := (v4 * bitarr.MulHashConst) >> shift
			if f3[(key>>3)&f3mask]&(1<<(key&7)) != 0 {
				if stores {
					scr.aLong = append(scr.aLong, p)
				} else {
					scr.sink ^= uint32(pp) << 8
				}
			}
		}
	}
}

// --- S-PATCH renditions (split filter-1/filter-2 probes) ---

// fusedRangeSplit is the S-PATCH fused filtering round over [start,
// end): the same skip/SWAR/tail structure as fusedRangeMerged with the
// scalar algorithm's two separate filter probes. S-PATCH has no
// no-store measurement mode, so candidates always store.
func (m *common) fusedRangeSplit(scr *Scratch, input []byte, start, end int) {
	n := len(input)
	mainEnd := end
	if n-3 < mainEnd {
		mainEnd = n - 3
	}
	if mainEnd < start {
		mainEnd = start
	}
	i := start
	if m.accelOn() {
		if m.accel.Mode() == accel.ModeIndexByte {
			m.accelIndexRangeSplit(scr, input, i, mainEnd)
		} else {
			m.accelWindowRangeSplit(scr, input, i, mainEnd)
		}
	} else {
		m.plainRangeSplit(scr, input, i, mainEnd)
	}
	for i = mainEnd; i < end; i++ {
		m.scalarFilterPos(scr, input, i, n, nil)
	}
}

// plainRangeSplit is the unaccelerated S-PATCH probe loop over [i, end),
// end <= len(input)-3, with the same 5-windows-per-load SWAR structure
// as plainRangeMerged.
func (m *common) plainRangeSplit(scr *Scratch, input []byte, i, end int) {
	f1 := filterBytes(m.fs.Filter1.Bytes())
	f2 := filterBytes(m.fs.Filter2.Bytes())
	f3 := m.fs.Filter3.Bytes()
	f3mask := uint32(len(f3) - 1)
	shift := m.fs.Filter3.Shift()
	packEnd := end - 5
	if lim := len(input) - 8; lim < packEnd {
		packEnd = lim
	}
	for ; i <= packEnd; i += 5 {
		v := binary.LittleEndian.Uint64(input[i:])
		for k := 0; k < 5; k++ {
			idx := uint32(v>>(8*uint(k))) & 0xffff
			bit := idx & 7
			if f1[(idx>>3)&8191]&(1<<bit) != 0 {
				scr.aShort = append(scr.aShort, int32(i+k))
			}
			if f2[(idx>>3)&8191]&(1<<bit) != 0 {
				v4 := uint32(v >> (8 * uint(k)))
				key := (v4 * bitarr.MulHashConst) >> shift
				if f3[(key>>3)&f3mask]&(1<<(key&7)) != 0 {
					scr.aLong = append(scr.aLong, int32(i+k))
				}
			}
		}
	}
	for ; i < end; i++ {
		m.probeSplit(scr, input, i)
	}
}

// accelWindowRangeSplit mirrors accelWindowRangeMerged for S-PATCH,
// including the kernel dispatch and the SWAR finish pass.
func (m *common) accelWindowRangeSplit(scr *Scratch, input []byte, start, mainEnd int) {
	t := m.accel
	q := &scr.aq
	w := 0
	i := start
	checkAt := i + accel.SpanBytes
	spanStart := i
	drained := 0
	kern, blk, look := m.kern, m.kblock, m.klook
	for {
		packEnd := mainEnd - blk
		if lim := len(input) - look; lim < packEnd {
			packEnd = lim
		}
		for i <= packEnd {
			room := (accel.QueueLen - blk - w) / blk
			if room == 0 {
				drained += w
				m.drainSplit(scr, input, q[:w])
				w = 0
				continue
			}
			limit := i + (room-1)*blk
			if packEnd < limit {
				limit = packEnd
			}
			if checkAt < limit {
				limit = checkAt
			}
			i, w = t.ExtractKernel(kern, input, i, limit, q, w)
			if w >= accel.QueueLen-blk {
				drained += w
				m.drainSplit(scr, input, q[:w])
				w = 0
			}
			if i >= checkAt {
				if !accel.KeepAccel(drained+w, i-spanStart) {
					drained += w
					m.drainSplit(scr, input, q[:w])
					w = 0
					plainEnd := i + accel.PlainBytes
					if plainEnd > mainEnd {
						plainEnd = mainEnd
					}
					m.plainRangeSplit(scr, input, i, plainEnd)
					i = plainEnd
				}
				spanStart = i
				drained = 0
				checkAt = i + accel.SpanBytes
			}
		}
		if kern == vec.KernelSWAR {
			break
		}
		kern, blk, look = vec.KernelSWAR, 5, 8
	}
	m.drainSplit(scr, input, q[:w])
	for ; i < mainEnd; i++ {
		m.probeSplit(scr, input, i)
	}
}

// accelIndexRangeSplit mirrors accelIndexRangeMerged for S-PATCH.
func (m *common) accelIndexRangeSplit(scr *Scratch, input []byte, start, mainEnd int) {
	t := m.accel
	q := &scr.aq
	i := start
	for i < mainEnd {
		spanEnd := i + accel.SpanBytes
		if spanEnd > mainEnd {
			spanEnd = mainEnd
		}
		spanLen := spanEnd - i
		viable := 0
		w := 0
		for i < spanEnd {
			j := t.Next(input, i, spanEnd)
			i = j
			if i >= spanEnd {
				break
			}
			viable++
			q[w&accel.QueueMask] = int32(i)
			w++
			if w >= accel.QueueLen {
				m.drainSplit(scr, input, q[:w])
				w = 0
			}
			i++
		}
		m.drainSplit(scr, input, q[:w])
		if !accel.KeepAccelIndex(viable, spanLen) {
			plainEnd := i + accel.PlainBytes
			if plainEnd > mainEnd {
				plainEnd = mainEnd
			}
			m.plainRangeSplit(scr, input, i, plainEnd)
			i = plainEnd
		}
	}
}

// drainSplit replays queued viable positions through the S-PATCH probe
// chain, in position order (two filter byte fetches instead of one
// merged word fetch).
func (m *common) drainSplit(scr *Scratch, input []byte, q []int32) {
	f1 := filterBytes(m.fs.Filter1.Bytes())
	f2 := filterBytes(m.fs.Filter2.Bytes())
	f3 := m.fs.Filter3.Bytes()
	f3mask := uint32(len(f3) - 1)
	shift := m.fs.Filter3.Shift()
	for _, p := range q {
		pp := int(p)
		v4 := binary.LittleEndian.Uint32(input[pp:])
		idx := v4 & 0xffff
		bit := idx & 7
		if f1[(idx>>3)&8191]&(1<<bit) != 0 {
			scr.aShort = append(scr.aShort, p)
		}
		if f2[(idx>>3)&8191]&(1<<bit) != 0 {
			key := (v4 * bitarr.MulHashConst) >> shift
			if f3[(key>>3)&f3mask]&(1<<(key&7)) != 0 {
				scr.aLong = append(scr.aLong, p)
			}
		}
	}
}

// Bounds-check-elimination audit (go build -gcflags=-d=ssa/check_bce).
// Direct-filter and union-bitmap indexes are masked into their
// fixed-size array-pointer domains ((idx>>3)&8191 for the 8 KB filter
// arrays, (w>>6)&1023 for the union bitmap, w&QueueMask for queue
// stores) — the prove pass does not carry the idx&0xffff range through
// the later shift, so the masks are load-bearing; the compiler folds
// them into the existing address arithmetic. The checks that remain are
// unavoidable and amortized:
//   - one binary.LittleEndian.Uint64 bounded access per 5-position pack
//     (the compiler cannot see packEnd+8 <= len(input) through the min
//     of two derivations);
//   - the binary.LittleEndian.Uint32 reads at queued/drained positions
//     (queue entries are data the prove pass cannot follow);
//   - filter-3 probes (the filter is runtime-sized; its key is masked
//     with f3mask, which the compiler cannot know equals len-1), taken
//     only behind a filter-2 hit;
//   - one q[:w] re-slice per drain.
