package core

import (
	"math/rand"
	"testing"

	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

func scanS(m *SPatch, input []byte) []patterns.Match {
	var out []patterns.Match
	m.Scan(input, nil, func(mm patterns.Match) { out = append(out, mm) })
	return out
}

func scanV(m *VPatch, input []byte) []patterns.Match {
	var out []patterns.Match
	m.Scan(input, nil, func(mm patterns.Match) { out = append(out, mm) })
	return out
}

// checkAll verifies S-PATCH and V-PATCH (all widths and ablation modes)
// against the naive reference.
func checkAll(t *testing.T, set *patterns.Set, input []byte) {
	t.Helper()
	want := patterns.FindAllNaive(set, input)
	if got := scanS(NewSPatch(set, Options{}), input); !patterns.EqualMatches(got, want) {
		t.Fatalf("S-PATCH disagrees with naive: got %d want %d", len(got), len(want))
	}
	for _, w := range []int{4, 8, 16} {
		if got := scanV(NewVPatch(set, VOptions{Width: w}), input); !patterns.EqualMatches(got, want) {
			t.Fatalf("V-PATCH W=%d disagrees with naive: got %d want %d", w, len(got), len(want))
		}
	}
	variants := []VOptions{
		{NoFilterMerge: true},
		{NoUnroll: true},
		{BranchyFilter3: true},
		{NoFilterMerge: true, NoUnroll: true, BranchyFilter3: true},
	}
	for _, opt := range variants {
		if got := scanV(NewVPatch(set, opt), input); !patterns.EqualMatches(got, want) {
			t.Fatalf("V-PATCH %+v disagrees with naive: got %d want %d", opt, len(got), len(want))
		}
	}
}

func TestBasicMatching(t *testing.T) {
	checkAll(t, patterns.FromStrings("GET", "HTTP/1.1", "attack", "ab"),
		[]byte("GET /attack HTTP/1.1 abattackab"))
}

func TestShortPatternClasses(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte{0x90}, false, patterns.ProtoGeneric)
	set.Add([]byte("ab"), false, patterns.ProtoGeneric)
	set.Add([]byte("xyz"), false, patterns.ProtoGeneric)
	input := append([]byte("ab xyz abxyz"), 0x90, 0x90)
	checkAll(t, set, input)
}

func TestLongPatterns(t *testing.T) {
	checkAll(t, patterns.FromStrings("attack", "attribute", "atta", "longerpatternhere"),
		[]byte("xx attribute attack atta longerpatternhere attrib"))
}

func TestOverlapping(t *testing.T) {
	checkAll(t, patterns.FromStrings("aa", "aaa", "aaaa"), []byte("aaaaaaa"))
	checkAll(t, patterns.FromStrings("abab", "ba"), []byte("abababab"))
}

func TestNocase(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte("GeT"), true, patterns.ProtoHTTP)
	set.Add([]byte("Cmd.EXE"), true, patterns.ProtoHTTP)
	set.Add([]byte("CaSe"), false, patterns.ProtoHTTP)
	checkAll(t, set, []byte("GET get CMD.EXE cmd.exe CaSe case gEt"))
}

func TestMatchAtFinalBytes(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte{0xAB}, false, patterns.ProtoGeneric)
	set.Add([]byte("zz"), false, patterns.ProtoGeneric)
	set.Add([]byte("tail"), false, patterns.ProtoGeneric)
	checkAll(t, set, append([]byte("xxx tail zz"), 0xAB))
	checkAll(t, set, []byte("tail"))
	checkAll(t, set, []byte("zz"))
	checkAll(t, set, []byte{0xAB})
}

func TestEmptyCases(t *testing.T) {
	if n := len(scanS(NewSPatch(patterns.NewSet(), Options{}), []byte("abc"))); n != 0 {
		t.Fatalf("empty set matched %d", n)
	}
	if n := len(scanV(NewVPatch(patterns.FromStrings("ab"), VOptions{}), nil)); n != 0 {
		t.Fatalf("empty input matched %d", n)
	}
}

func TestTinyInputsAllWidths(t *testing.T) {
	set := patterns.FromStrings("ab", "bc", "abcd")
	for size := 0; size < 25; size++ {
		input := make([]byte, size)
		for i := range input {
			input[i] = byte('a' + i%4)
		}
		checkAll(t, set, input)
	}
}

func TestChunkBoundarySpanningMatches(t *testing.T) {
	// A long pattern placed to straddle every chunk boundary must still
	// be found: filtering windows read past the chunk edge.
	set := patterns.FromStrings("SPANNING-PATTERN")
	chunk := 256
	input := make([]byte, 4*chunk)
	for i := range input {
		input[i] = 'x'
	}
	for _, pos := range []int{chunk - 1, chunk - 8, 2*chunk - 3, 3*chunk - 15} {
		copy(input[pos:], "SPANNING-PATTERN")
	}
	want := patterns.FindAllNaive(set, input)
	if len(want) == 0 {
		t.Fatal("test setup broken: no ground-truth matches")
	}
	if got := scanS(NewSPatch(set, Options{ChunkSize: chunk}), input); !patterns.EqualMatches(got, want) {
		t.Fatalf("S-PATCH chunked: got %d want %d", len(got), len(want))
	}
	if got := scanV(NewVPatch(set, VOptions{ChunkSize: chunk}), input); !patterns.EqualMatches(got, want) {
		t.Fatalf("V-PATCH chunked: got %d want %d", len(got), len(want))
	}
}

func TestChunkSizesEquivalent(t *testing.T) {
	set := patterns.GenerateS1(7).Subset(100, 4)
	input := traffic.Synthesize(traffic.ISCXDay2, 8<<10, 6, set)
	want := scanS(NewSPatch(set, Options{}), input)
	for _, chunk := range []int{64, 333, 1 << 10, 1 << 20} {
		if got := scanS(NewSPatch(set, Options{ChunkSize: chunk}), input); !patterns.EqualMatches(got, want) {
			t.Fatalf("S-PATCH chunk=%d diverges", chunk)
		}
		if got := scanV(NewVPatch(set, VOptions{ChunkSize: chunk}), input); !patterns.EqualMatches(got, want) {
			t.Fatalf("V-PATCH chunk=%d diverges", chunk)
		}
	}
}

// V-PATCH's filtering must be lane-for-lane identical to S-PATCH's:
// same candidate positions, in the same order.
func TestCandidateArraysIdentical(t *testing.T) {
	set := patterns.GenerateS1(3).Subset(300, 2)
	input := traffic.Synthesize(traffic.ISCXDay6, 32<<10, 9, set)
	sShort, sLong := NewSPatch(set, Options{}).FilterOnly(input, nil)
	for _, w := range []int{4, 8, 16} {
		vShort, vLong := NewVPatch(set, VOptions{Width: w}).FilterOnly(input, nil, true)
		if !equalInt32(sShort, vShort) {
			t.Fatalf("W=%d: A_short diverges (%d vs %d entries)", w, len(sShort), len(vShort))
		}
		if !equalInt32(sLong, vLong) {
			t.Fatalf("W=%d: A_long diverges (%d vs %d entries)", w, len(sLong), len(vLong))
		}
	}
	// Ablation variants must not change filtering semantics either.
	for _, opt := range []VOptions{{NoFilterMerge: true}, {BranchyFilter3: true}, {NoUnroll: true}} {
		vShort, vLong := NewVPatch(set, opt).FilterOnly(input, nil, true)
		if !equalInt32(sShort, vShort) || !equalInt32(sLong, vLong) {
			t.Fatalf("ablation %+v changes candidates", opt)
		}
	}
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFilterOnlyNoStoresCountsOnly(t *testing.T) {
	set := patterns.GenerateS1(5).Subset(200, 3)
	input := traffic.Synthesize(traffic.ISCXDay2, 16<<10, 2, set)
	m := NewVPatch(set, VOptions{})
	var cStores, cNoStores metrics.Counters
	short, long := m.FilterOnly(input, &cStores, true)
	s2, l2 := m.FilterOnly(input, &cNoStores, false)
	if s2 != nil || l2 != nil {
		t.Fatal("no-store mode must not return positions")
	}
	if len(short) == 0 && len(long) == 0 {
		t.Fatal("test needs some candidates")
	}
	// The filter work itself is identical.
	if cStores.Gathers != cNoStores.Gathers || cStores.VectorIters != cNoStores.VectorIters {
		t.Fatalf("no-store mode changed filter work: %d/%d gathers", cStores.Gathers, cNoStores.Gathers)
	}
}

func TestRandomAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		set := patterns.NewSet()
		n := 1 + rng.Intn(15)
		for i := 0; i < n; i++ {
			l := 1 + rng.Intn(8)
			p := make([]byte, l)
			for j := range p {
				p[j] = byte('a' + rng.Intn(3))
			}
			set.Add(p, rng.Intn(5) == 0, patterns.ProtoGeneric)
		}
		input := make([]byte, 400)
		for j := range input {
			input[j] = byte('a' + rng.Intn(3))
		}
		checkAll(t, set, input)
	}
}

func TestRealisticTrafficAgainstNaive(t *testing.T) {
	set := patterns.GenerateS1(41).Subset(80, 6)
	input := traffic.Synthesize(traffic.ISCXDay2, 32<<10, 13, set)
	checkAll(t, set, input)
}

func TestAgainstNaiveWithInjectedMatches(t *testing.T) {
	set := patterns.GenerateS1(43).Subset(50, 7)
	input := traffic.Random(16<<10, 3)
	traffic.InjectMatches(input, set, 0.3, 5)
	checkAll(t, set, input)
}

func TestSPatchCounters(t *testing.T) {
	set := patterns.FromStrings("GET", "longpattern")
	m := NewSPatch(set, Options{})
	var c metrics.Counters
	input := []byte("GET /longpattern GET")
	m.Scan(input, &c, nil)
	if c.BytesScanned != uint64(len(input)) {
		t.Fatalf("BytesScanned = %d", c.BytesScanned)
	}
	if c.Filter1Probes == 0 || c.Filter2Probes == 0 {
		t.Fatal("filter probes not counted")
	}
	if c.Matches != 3 {
		t.Fatalf("Matches = %d, want 3", c.Matches)
	}
	if c.ShortCandidates == 0 || c.LongCandidates == 0 {
		t.Fatalf("candidates not recorded: %+v", c)
	}
	if c.FilteringNs <= 0 || c.VerifyNs <= 0 {
		t.Fatal("phase times not recorded")
	}
}

func TestVPatchStructuralCounters(t *testing.T) {
	set := patterns.FromStrings("GET", "longpattern")
	m := NewVPatch(set, VOptions{Width: 8, NoUnroll: true})
	var c metrics.Counters
	input := make([]byte, 8192)
	m.Scan(input, &c, nil)
	// One merged gather per vector iteration; W positions per iteration.
	if c.MergedGathers != c.VectorIters {
		t.Fatalf("merged gathers %d != iters %d", c.MergedGathers, c.VectorIters)
	}
	if c.Filter1Probes != c.VectorIters*8+extraScalarProbes(&c) {
		// Scalar tail contributes a handful of probes; just sanity-bound.
		t.Logf("filter1 probes %d, iters %d", c.Filter1Probes, c.VectorIters)
	}
	if c.Gathers < c.MergedGathers {
		t.Fatal("gather accounting inconsistent")
	}
}

func extraScalarProbes(c *metrics.Counters) uint64 { return c.Filter1Probes - c.VectorIters*8 }

func TestVPatchNoFilterMergeDoublesGathers(t *testing.T) {
	set := patterns.FromStrings("xyzw")
	input := traffic.Synthesize(traffic.ISCXDay2, 16<<10, 1, nil)
	var merged, unmerged metrics.Counters
	NewVPatch(set, VOptions{}).FilterOnly(input, &merged, true)
	NewVPatch(set, VOptions{NoFilterMerge: true}).FilterOnly(input, &unmerged, true)
	// Without merging, the filter-1/2 stage needs 2 gathers per block
	// instead of 1 (filter-3 gathers unchanged).
	extraF3 := merged.Gathers - merged.MergedGathers
	if unmerged.Gathers != 2*merged.MergedGathers+extraF3 {
		t.Fatalf("unmerged gathers %d, want %d", unmerged.Gathers, 2*merged.MergedGathers+extraF3)
	}
	if unmerged.MergedGathers != 0 {
		t.Fatal("unmerged mode still counts merged gathers")
	}
}

func TestUsefulLaneFractionTracked(t *testing.T) {
	set := patterns.GenerateS1(11).WebSubset()
	input := traffic.Synthesize(traffic.ISCXDay2, 64<<10, 3, set)
	var c metrics.Counters
	NewVPatch(set, VOptions{}).FilterOnly(input, &c, true)
	if c.Filter3Blocks == 0 {
		t.Fatal("filter-3 never executed on realistic traffic")
	}
	frac := c.UsefulLaneFrac(8)
	if frac <= 0 || frac > 1 {
		t.Fatalf("useful-lane fraction %v out of range", frac)
	}
}

func TestFilteringRejectsMostRandomInput(t *testing.T) {
	// Paper: ~95% of random input is filtered out.
	set := patterns.GenerateS1(1).WebSubset()
	m := NewSPatch(set, Options{})
	var c metrics.Counters
	m.Scan(traffic.Random(256<<10, 9), &c, nil)
	if got := c.CandidateFrac(); got > 0.2 {
		t.Fatalf("candidate fraction %.3f on random input; filters not selective", got)
	}
}

func TestAccessorsAndDefaults(t *testing.T) {
	m := NewVPatch(patterns.FromStrings("abcd"), VOptions{})
	if m.Width() != 8 {
		t.Fatalf("default width %d, want 8", m.Width())
	}
	if m.ChunkSize() != DefaultChunkSize {
		t.Fatalf("default chunk %d", m.ChunkSize())
	}
	if m.FilterSizeBytes() != 16384+16384 {
		t.Fatalf("filter footprint %d, want 32 KB (merged 16K + filter3 16K)", m.FilterSizeBytes())
	}
	if m.Set().Len() != 1 {
		t.Fatal("Set accessor wrong")
	}
}

func TestScanReusableAcrossInputs(t *testing.T) {
	// Matchers must be reusable: scanning twice yields identical results.
	set := patterns.FromStrings("dup", "licate")
	m := NewVPatch(set, VOptions{})
	in := []byte("duplicate duplicate")
	a := scanV(m, in)
	b := scanV(m, in)
	if !patterns.EqualMatches(a, b) {
		t.Fatal("second scan diverged")
	}
}

func BenchmarkSPatch2KRealistic(b *testing.B) {
	set := patterns.GenerateS1(1).WebSubset()
	m := NewSPatch(set, Options{})
	input := traffic.Synthesize(traffic.ISCXDay2, 1<<20, 1, set)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scan(input, nil, nil)
	}
}

func BenchmarkVPatch2KRealistic(b *testing.B) {
	set := patterns.GenerateS1(1).WebSubset()
	m := NewVPatch(set, VOptions{})
	input := traffic.Synthesize(traffic.ISCXDay2, 1<<20, 1, set)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scan(input, nil, nil)
	}
}

func BenchmarkVPatchFilteringOnly(b *testing.B) {
	set := patterns.GenerateS1(1).WebSubset()
	m := NewVPatch(set, VOptions{})
	input := traffic.Synthesize(traffic.ISCXDay2, 1<<20, 1, set)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.FilterOnly(input, nil, false)
	}
}
