// Package core implements the paper's contribution: S-PATCH, the
// cache-aware, vectorization-friendly redesign of DFC's filtering stage
// (§IV-A), and V-PATCH, its vectorized version (§IV-B).
//
// Both algorithms share the same structure, which this file implements:
//
//   - The input is processed in cache-sized chunks. For each chunk a
//     *filtering round* runs first, writing candidate positions into two
//     temporary arrays (A_short for filter-1 hits, A_long for positions
//     corroborated by filters 2 and 3); a *verification round* then
//     replays the arrays against the compact hash tables. Splitting the
//     rounds keeps each round's data structures cache-resident and — for
//     V-PATCH — avoids mixing vector and scalar code (paper §IV-A).
//
//   - Filter 1 holds the short patterns (1-3 B, 2-byte index), filter 2
//     the long patterns (>= 4 B, same index), filter 3 a multiplicative
//     hash of 4-byte windows of the long patterns.
//
// S-PATCH executes the filtering round with scalar probes; V-PATCH (in
// vpatch.go) executes it W positions at a time with gathers on the merged
// filter.
//
// Compiled state (filters, verification tables) is immutable after
// construction; the candidate arrays are per-scan working memory held in
// a Scratch, so one compiled matcher can serve concurrent scans that
// each bring their own Scratch (the engine.Engine contract).
package core

import (
	"vpatch/internal/accel"
	"vpatch/internal/bitarr"
	"vpatch/internal/engine"
	"vpatch/internal/filters"
	"vpatch/internal/hashtab"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/vec"
)

// DefaultChunkSize is the filtering-round granularity: 64 KB keeps the
// chunk plus both candidate arrays inside L2 next to the filters.
const DefaultChunkSize = 64 << 10

// Scratch is the mutable working memory of one S-PATCH/V-PATCH scan:
// the candidate arrays of the filtering round (reset per chunk, reused
// across chunks and scans) plus the no-store sink of the filtering-only
// measurement mode. A Scratch belongs to exactly one goroutine at a
// time; the compiled matcher it is used with is never written during a
// scan.
type Scratch struct {
	aShort []int32
	aLong  []int32

	// bShort/bLong are the batch-mode candidate arrays: packed
	// (buffer, position) pairs (vec.PackCursor), since a batched
	// filtering round interleaves candidates from many buffers and the
	// verification round must resolve each one to its buffer. Flushed at
	// a watermark so both arrays stay cache-resident like aShort/aLong.
	bShort []int64
	bLong  []int64

	// sink absorbs filter masks in no-store mode (Fig. 6's
	// "V-PATCH-filtering" variant) so the work is not dead-code.
	sink uint32

	// aq is the viable-position queue of the accelerated fused kernels
	// (fused.go): accel.Extract compacts positions that pass the
	// window-viability bitmap into it, and the probe chain drains it at
	// the watermark. Scratch-resident so the hot path never pays the
	// stack-array zeroing a local would cost on every call.
	aq [accel.QueueLen]int32
}

// NewScratch allocates scan working memory sized for typical candidate
// densities.
func NewScratch() *Scratch {
	return &Scratch{
		aShort: make([]int32, 0, 4096),
		aLong:  make([]int32, 0, 4096),
	}
}

// common holds the compiled state S-PATCH and V-PATCH share — the filter
// stage and the verification tables — all read-only after construction.
type common struct {
	set      *patterns.Set
	fs       *filters.SPatchSet
	verifier *hashtab.Verifier
	chunk    int

	// accel is the skip-loop acceleration table derived from the merged
	// filter-1/2 state (fused.go); noAccel is the runtime ablation
	// switch that forces the plain kernels (not serialized — databases
	// always load with acceleration rebuilt and enabled).
	accel   *accel.Table
	noAccel bool

	// kern is the extract-loop kernel resolved at compile/decode time
	// by the CPUID dispatch (fused.go setKernel); kblock/klook cache
	// its geometry for the burst arithmetic. Host state, never
	// serialized: a database re-dispatches on the loading host.
	kern   vec.KernelID
	kblock int
	klook  int
}

func newCommon(set *patterns.Set, filter3Log2Bits uint, chunkSize int, kern vec.KernelID) common {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	c := common{
		set:      set,
		fs:       filters.BuildSPatch(set, filter3Log2Bits),
		verifier: hashtab.Build(set),
		chunk:    chunkSize,
	}
	c.buildAccel()
	c.setKernel(kern)
	return c
}

// FilterSizeBytes reports the cache footprint of the filter stage.
func (m *common) FilterSizeBytes() int { return m.fs.SizeBytes() }

// Set returns the compiled pattern set.
func (m *common) Set() *patterns.Set { return m.set }

// ChunkSize returns the filtering-round chunk size in bytes.
func (m *common) ChunkSize() int { return m.chunk }

// scalarFilterPos runs the scalar S-PATCH filter chain for position i
// (Algorithm 1, lines 4-13) and appends candidates to scr. Used by
// S-PATCH for every position and by V-PATCH for the sub-register tail.
func (m *common) scalarFilterPos(scr *Scratch, input []byte, i, n int, c *metrics.Counters) {
	if i+1 >= n {
		// Final byte: no 2-byte window exists; only 1-byte patterns can
		// still start here.
		if m.fs.HasLen1 {
			scr.aShort = append(scr.aShort, int32(i))
		}
		return
	}
	idx := bitarr.Index2(input[i], input[i+1])
	if c != nil {
		c.Filter1Probes++
		c.Filter2Probes++
	}
	if m.fs.Filter1.Test(idx) {
		scr.aShort = append(scr.aShort, int32(i))
	}
	if m.fs.Filter2.Test(idx) && i+4 <= n {
		if c != nil {
			c.Filter3Probes++
		}
		if m.fs.Filter3.Test4(bitarr.Load4(input[i:])) {
			scr.aLong = append(scr.aLong, int32(i))
		}
	}
}

// scalarFilterPosBatch is scalarFilterPos for batch mode: the same
// filter chain for position i of the batch's buf'th buffer, appending
// packed (buffer, position) candidates.
func (m *common) scalarFilterPosBatch(scr *Scratch, input []byte, buf int32, i, n int, c *metrics.Counters) {
	if i+1 >= n {
		if m.fs.HasLen1 {
			scr.bShort = append(scr.bShort, vec.PackCursor(buf, int32(i)))
		}
		return
	}
	idx := bitarr.Index2(input[i], input[i+1])
	if c != nil {
		c.Filter1Probes++
		c.Filter2Probes++
	}
	if m.fs.Filter1.Test(idx) {
		scr.bShort = append(scr.bShort, vec.PackCursor(buf, int32(i)))
	}
	if m.fs.Filter2.Test(idx) && i+4 <= n {
		if c != nil {
			c.Filter3Probes++
		}
		if m.fs.Filter3.Test4(bitarr.Load4(input[i:])) {
			scr.bLong = append(scr.bLong, vec.PackCursor(buf, int32(i)))
		}
	}
}

// batchFlushCandidates is the verification watermark of batch mode:
// once either packed candidate array holds this many entries the
// verification round runs and the arrays reset, keeping the batch
// two-round structure as cache-resident as the per-chunk serial one
// (2 x 4096 x 8 B = 64 KB, the serial chunk size).
const batchFlushCandidates = 4096

// verifyBatch replays the batched candidate arrays against the compact
// hash tables, resolving each packed candidate to its buffer, then
// resets the arrays. It is the batch analogue of verifyCandidates and
// runs at the flush watermark and at end of batch.
func (m *common) verifyBatch(scr *Scratch, inputs [][]byte, c *metrics.Counters, emit engine.BatchEmitFunc) {
	if len(scr.bShort) == 0 && len(scr.bLong) == 0 {
		return
	}
	var sw metrics.Stopwatch
	if c != nil {
		c.ShortCandidates += uint64(len(scr.bShort))
		c.LongCandidates += uint64(len(scr.bLong))
		sw = metrics.Start()
	}
	buf := -1
	var wrap patterns.EmitFunc
	if emit != nil {
		wrap = func(mm patterns.Match) { emit(buf, mm) }
	}
	for _, pc := range scr.bShort {
		b, pos := vec.UnpackCursor(pc)
		buf = int(b)
		m.verifier.VerifyShortAt(inputs[buf], int(pos), c, wrap)
	}
	for _, pc := range scr.bLong {
		b, pos := vec.UnpackCursor(pc)
		buf = int(b)
		m.verifier.VerifyLongAt(inputs[buf], int(pos), c, wrap)
	}
	scr.bShort = scr.bShort[:0]
	scr.bLong = scr.bLong[:0]
	if c != nil {
		c.VerifyNs += sw.Stop()
	}
}

// verifyCandidates replays the candidate arrays against the compact hash
// tables (Algorithm 1, lines 15-20).
func (m *common) verifyCandidates(scr *Scratch, input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	for _, pos := range scr.aShort {
		m.verifier.VerifyShortAt(input, int(pos), c, emit)
	}
	for _, pos := range scr.aLong {
		m.verifier.VerifyLongAt(input, int(pos), c, emit)
	}
}

// recordCandidates accumulates per-chunk candidate counts.
func (m *common) recordCandidates(scr *Scratch, c *metrics.Counters) {
	if c != nil {
		c.ShortCandidates += uint64(len(scr.aShort))
		c.LongCandidates += uint64(len(scr.aLong))
	}
}
