// Package core implements the paper's contribution: S-PATCH, the
// cache-aware, vectorization-friendly redesign of DFC's filtering stage
// (§IV-A), and V-PATCH, its vectorized version (§IV-B).
//
// Both algorithms share the same structure, which this file implements:
//
//   - The input is processed in cache-sized chunks. For each chunk a
//     *filtering round* runs first, writing candidate positions into two
//     temporary arrays (A_short for filter-1 hits, A_long for positions
//     corroborated by filters 2 and 3); a *verification round* then
//     replays the arrays against the compact hash tables. Splitting the
//     rounds keeps each round's data structures cache-resident and — for
//     V-PATCH — avoids mixing vector and scalar code (paper §IV-A).
//
//   - Filter 1 holds the short patterns (1-3 B, 2-byte index), filter 2
//     the long patterns (>= 4 B, same index), filter 3 a multiplicative
//     hash of 4-byte windows of the long patterns.
//
// S-PATCH executes the filtering round with scalar probes; V-PATCH (in
// vpatch.go) executes it W positions at a time with gathers on the merged
// filter.
package core

import (
	"vpatch/internal/bitarr"
	"vpatch/internal/filters"
	"vpatch/internal/hashtab"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
)

// DefaultChunkSize is the filtering-round granularity: 64 KB keeps the
// chunk plus both candidate arrays inside L2 next to the filters.
const DefaultChunkSize = 64 << 10

// common holds everything S-PATCH and V-PATCH share: the filter stage,
// the verification tables, and the reusable candidate arrays.
type common struct {
	set      *patterns.Set
	fs       *filters.SPatchSet
	verifier *hashtab.Verifier
	chunk    int

	// Candidate arrays, reset per chunk and reused across chunks/scans.
	aShort []int32
	aLong  []int32
}

func newCommon(set *patterns.Set, filter3Log2Bits uint, chunkSize int) common {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return common{
		set:      set,
		fs:       filters.BuildSPatch(set, filter3Log2Bits),
		verifier: hashtab.Build(set),
		chunk:    chunkSize,
		aShort:   make([]int32, 0, 4096),
		aLong:    make([]int32, 0, 4096),
	}
}

// FilterSizeBytes reports the cache footprint of the filter stage.
func (m *common) FilterSizeBytes() int { return m.fs.SizeBytes() }

// Set returns the compiled pattern set.
func (m *common) Set() *patterns.Set { return m.set }

// ChunkSize returns the filtering-round chunk size in bytes.
func (m *common) ChunkSize() int { return m.chunk }

// scalarFilterPos runs the scalar S-PATCH filter chain for position i
// (Algorithm 1, lines 4-13) and appends candidates. Used by S-PATCH for
// every position and by V-PATCH for the sub-register tail.
func (m *common) scalarFilterPos(input []byte, i, n int, c *metrics.Counters) {
	if i+1 >= n {
		// Final byte: no 2-byte window exists; only 1-byte patterns can
		// still start here.
		if m.fs.HasLen1 {
			m.aShort = append(m.aShort, int32(i))
		}
		return
	}
	idx := bitarr.Index2(input[i], input[i+1])
	if c != nil {
		c.Filter1Probes++
		c.Filter2Probes++
	}
	if m.fs.Filter1.Test(idx) {
		m.aShort = append(m.aShort, int32(i))
	}
	if m.fs.Filter2.Test(idx) && i+4 <= n {
		if c != nil {
			c.Filter3Probes++
		}
		if m.fs.Filter3.Test4(bitarr.Load4(input[i:])) {
			m.aLong = append(m.aLong, int32(i))
		}
	}
}

// verifyCandidates replays the candidate arrays against the compact hash
// tables (Algorithm 1, lines 15-20).
func (m *common) verifyCandidates(input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	for _, pos := range m.aShort {
		m.verifier.VerifyShortAt(input, int(pos), c, emit)
	}
	for _, pos := range m.aLong {
		m.verifier.VerifyLongAt(input, int(pos), c, emit)
	}
}

// recordCandidates accumulates per-chunk candidate counts.
func (m *common) recordCandidates(c *metrics.Counters) {
	if c != nil {
		c.ShortCandidates += uint64(len(m.aShort))
		c.LongCandidates += uint64(len(m.aLong))
	}
}
