package core

import (
	"testing"

	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
	"vpatch/internal/vec"
)

// batchTestSet mixes short and long patterns so both candidate classes
// flow through the batched verification round.
func batchTestSet() *patterns.Set {
	return patterns.FromStrings(
		"GET", "Host", "attack-vector-long", "ab", "x", "content-length",
	)
}

// collectBatch runs a batch scan and returns matches grouped by buffer,
// sorted.
func collectBatch(m *VPatch, bufs [][]byte, c *metrics.Counters) [][]patterns.Match {
	out := make([][]patterns.Match, len(bufs))
	m.ScanBatch(bufs, c, func(b int, mm patterns.Match) {
		out[b] = append(out[b], mm)
	})
	for _, ms := range out {
		patterns.SortMatches(ms)
	}
	return out
}

// TestVPatchBatchVariantsAgree: the fused timing path, the explicit
// lane-per-packet engine (instrumented and forced), and every ablation
// variant must produce identical per-buffer matches.
func TestVPatchBatchVariantsAgree(t *testing.T) {
	set := batchTestSet()
	bufs := [][]byte{
		[]byte("GET /attack-vector-long HTTP/1.1"),
		[]byte("x"),
		nil,
		[]byte("Host: ab"),
		traffic.Synthesize(traffic.ISCXDay2, 8<<10, 1, set),
		[]byte("ab"),
	}

	base := NewVPatch(set, VOptions{})
	want := collectBatch(base, bufs, nil) // fused path

	// The same matcher, instrumented: routes through the lane engine.
	var c metrics.Counters
	got := collectBatch(base, bufs, &c)
	for i := range bufs {
		if !patterns.EqualMatches(got[i], want[i]) {
			t.Fatalf("instrumented: buffer %d: %d matches, want %d", i, len(got[i]), len(want[i]))
		}
	}
	if c.BatchIters == 0 {
		t.Fatal("instrumented batch counted no batched steps")
	}

	variants := map[string]VOptions{
		"force-engine":   {ForceEngine: true},
		"no-merge":       {NoFilterMerge: true},
		"branchy-f3":     {BranchyFilter3: true},
		"width-4":        {Width: 4, ForceEngine: true},
		"width-16":       {Width: 16, ForceEngine: true},
		"tiny-chunk":     {ChunkSize: 64},
		"small-filter-3": {Filter3Log2Bits: 14},
	}
	for name, opt := range variants {
		m := NewVPatch(set, opt)
		got := collectBatch(m, bufs, nil)
		for i := range bufs {
			if !patterns.EqualMatches(got[i], want[i]) {
				t.Fatalf("%s: buffer %d: %d matches, want %d", name, i, len(got[i]), len(want[i]))
			}
		}
	}
}

// TestBatchLaneOccupancy: occupancy is ~1.0 while many packets pend
// (lane refill working) and bounded by 1/W when only one packet exists.
func TestBatchLaneOccupancy(t *testing.T) {
	set := batchTestSet()
	m := NewVPatch(set, VOptions{})
	w := m.Width()

	many := traffic.FixedPackets(traffic.ISCXDay2, 64, 64*w, 3, nil)
	var c metrics.Counters
	m.ScanBatch(many, &c, nil)
	if frac := c.BatchLaneFrac(w); frac < 0.95 {
		t.Fatalf("occupancy %.3f over %d packets, want >= 0.95", frac, len(many))
	}

	var c1 metrics.Counters
	m.ScanBatch(traffic.FixedPackets(traffic.ISCXDay2, 64, 1, 3, nil), &c1, nil)
	if frac := c1.BatchLaneFrac(w); frac > 1.0/float64(w)+1e-9 {
		t.Fatalf("single packet occupancy %.3f, want <= 1/W", frac)
	}
}

// TestBatchTinyBufferFlood: a batch dominated by sub-4-byte buffers
// (drained scalar at refill, never entering a lane) must still flush
// verification at the watermark — candidate arrays stay bounded — and
// report every match.
func TestBatchTinyBufferFlood(t *testing.T) {
	set := patterns.FromStrings("x", "ab")
	m := NewVPatch(set, VOptions{})
	n := 3 * batchFlushCandidates
	bufs := make([][]byte, n)
	for i := range bufs {
		bufs[i] = []byte("x") // one candidate + one match per buffer
	}
	var c metrics.Counters
	matches := 0
	m.ScanBatch(bufs, &c, func(buf int, mm patterns.Match) {
		if buf < 0 || buf >= n || mm.Pos != 0 {
			t.Fatalf("bad match: buf=%d pos=%d", buf, mm.Pos)
		}
		matches++
	})
	if matches != n {
		t.Fatalf("%d matches, want %d", matches, n)
	}
	if c.ShortCandidates != uint64(n) {
		t.Fatalf("ShortCandidates = %d, want %d", c.ShortCandidates, n)
	}
	if cap(m.builtinScratch().bShort) > 2*batchFlushCandidates {
		t.Fatalf("candidate array grew to %d entries: watermark not applied",
			cap(m.builtinScratch().bShort))
	}
}

// TestPackCursorRoundTrip guards the packed candidate encoding.
func TestPackCursorRoundTrip(t *testing.T) {
	for _, tc := range [][2]int32{{0, 0}, {1, 2}, {1 << 20, 1<<31 - 1}, {1<<31 - 1, 0}} {
		if b, p := vec.UnpackCursor(vec.PackCursor(tc[0], tc[1])); b != tc[0] || p != tc[1] {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", tc[0], tc[1], b, p)
		}
	}
}
