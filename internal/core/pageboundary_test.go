//go:build linux

package core

import (
	"math/rand"
	"syscall"
	"testing"

	"vpatch/internal/patterns"
	"vpatch/internal/vec"
)

// TestKernelPageBoundary places inputs flush against an unmapped guard
// page and scans them with every kernel. The vector kernels read a
// lookahead window past each probed position; the fused loop's packEnd
// arithmetic must keep those reads inside the buffer, and this test
// makes any overread a hard SIGSEGV instead of a silent success.
func TestKernelPageBoundary(t *testing.T) {
	page := syscall.Getpagesize()
	const pages = 4
	mem, err := syscall.Mmap(-1, 0, pages*page,
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_PRIVATE|syscall.MAP_ANONYMOUS)
	if err != nil {
		t.Fatalf("mmap: %v", err)
	}
	defer syscall.Munmap(mem)
	// Revoke the last page: any read beyond the buffer faults.
	if err := syscall.Mprotect(mem[(pages-1)*page:], syscall.PROT_NONE); err != nil {
		t.Fatalf("mprotect: %v", err)
	}
	usable := mem[:(pages-1)*page]

	rng := rand.New(rand.NewSource(77))
	sets := []*patterns.Set{genSet(77), genBinarySet(77)}
	// Lengths bracketing the kernel block/lookahead geometry, each ending
	// exactly at the guard page.
	lengths := []int{0, 1, 4, 7, 8, 31, 32, 33, 63, 64, 65, 71, 72, 73,
		127, 128, 200, 511, 512, 513, 2000, len(usable)}
	for _, n := range lengths {
		if n > len(usable) {
			continue
		}
		buf := usable[len(usable)-n:]
		for trial := 0; trial < 2; trial++ {
			if trial == 0 {
				copy(buf, genInput(int64(n), n))
			} else {
				rng.Read(buf)
			}
			for _, set := range sets {
				want := patterns.FindAllNaive(set, buf)
				for _, k := range vec.Kernels() {
					vp := NewVPatch(set, VOptions{ForceKernel: k})
					got := vp.collect(buf)
					patterns.SortMatches(got)
					if !patterns.EqualMatches(got, want) {
						t.Fatalf("len %d kernel %v: V-PATCH %d matches, naive %d",
							n, k, len(got), len(want))
					}
					sp := NewSPatch(set, Options{ForceKernel: k})
					sgot := sp.collect(buf)
					patterns.SortMatches(sgot)
					if !patterns.EqualMatches(sgot, want) {
						t.Fatalf("len %d kernel %v: S-PATCH %d matches, naive %d",
							n, k, len(sgot), len(want))
					}
				}
			}
		}
	}
}
