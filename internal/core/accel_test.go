package core

import (
	"math/rand"
	"testing"

	"vpatch/internal/accel"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

// Property tests of the acceleration layer: every accelerated path —
// fused window-bitmap, fused index-byte, the governor's plain
// fallbacks, the instrumented engine-path skip, and the batch path —
// must be match- and candidate-identical to the unaccelerated
// ForceEngine reference, across widths, match densities and adversarial
// edge inputs.

// accelCases builds pattern sets exercising each skip mode.
func accelCases() map[string]*patterns.Set {
	web := patterns.GenerateS1(1).WebSubset().Subset(300, 1)

	rare := patterns.NewSet()
	rare.Add([]byte("\x00\x01evil"), false, patterns.ProtoGeneric)
	rare.Add([]byte("\x00\x01BAD"), true, patterns.ProtoGeneric)
	rare.Add([]byte("\x00"), false, patterns.ProtoGeneric) // 1-byte: final-byte special case

	tiny := patterns.NewSet()
	tiny.Add([]byte("ab"), false, patterns.ProtoGeneric)
	tiny.Add([]byte("abcd"), true, patterns.ProtoGeneric)
	tiny.Add([]byte("q"), false, patterns.ProtoGeneric)

	return map[string]*patterns.Set{"web": web, "rare": rare, "tiny": tiny}
}

// accelInputs builds the adversarial input family for a set: random at
// several densities, start bytes pinned to buffer edges, sub-4-byte
// tails, governor-crossing mixes of dense and clean regions.
func accelInputs(set *patterns.Set, rng *rand.Rand) [][]byte {
	var inputs [][]byte
	// Random buffers across the size ladder, including every sub-window
	// length.
	for _, n := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 13, 63, 64, 65, 1000, 4096} {
		b := make([]byte, n)
		rng.Read(b)
		inputs = append(inputs, b)
	}
	// Injected densities over random bases.
	for _, frac := range []float64{0.1, 0.5, 1.0} {
		b := traffic.Random(8192, rng.Int63())
		traffic.InjectMatches(b, set, frac, rng.Int63())
		inputs = append(inputs, b)
	}
	// Pattern occurrences pinned at buffer edges (first byte, last full
	// window, and truncated at the very end).
	for i := range set.Patterns() {
		p := set.Patterns()[i].Data
		b := make([]byte, 32+len(p))
		rng.Read(b)
		copy(b, p)                 // at offset 0
		copy(b[len(b)-len(p):], p) // flush with the end
		inputs = append(inputs, b)
		if len(p) > 1 && len(p) <= 16 {
			c := make([]byte, 16)
			rng.Read(c)
			copy(c[16-(len(p)-1):], p[:len(p)-1]) // truncated prefix at end
			inputs = append(inputs, c)
		}
	}
	// Governor-crossing input: alternating dense and clean regions far
	// larger than the span, so accelerated spans, plain fallbacks and
	// re-enables all occur within one scan.
	mixed := make([]byte, 160<<10)
	rng.Read(mixed)
	for off := 0; off < len(mixed); off += 64 << 10 {
		end := off + 32<<10
		if end > len(mixed) {
			end = len(mixed)
		}
		seg := mixed[off:end]
		traffic.InjectMatches(seg, set, 1.0, rng.Int63())
	}
	inputs = append(inputs, mixed)
	return inputs
}

// TestAccelFusedMatchesForceEngine is the acceleration fidelity
// property: for every skip mode, width, density and adversarial edge
// input, the accelerated fused paths produce candidate arrays
// (aShort/aLong) and match streams identical to the unaccelerated
// ForceEngine vec path, and the batch path stays per-buffer identical.
func TestAccelFusedMatchesForceEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, set := range accelCases() {
		for _, width := range []int{4, 8, 16} {
			fast := NewVPatch(set, VOptions{Width: width})
			ref := NewVPatch(set, VOptions{Width: width, ForceEngine: true})
			if name == "rare" && fast.accel.Mode() != accel.ModeIndexByte {
				t.Fatalf("rare set selected %v, want index-byte", fast.accel.Mode())
			}
			if name == "web" && fast.accel.Mode() != accel.ModeWindow {
				t.Fatalf("web set selected %v, want window-bitmap", fast.accel.Mode())
			}
			inputs := accelInputs(set, rng)
			for ii, input := range inputs {
				fs, fl := fast.FilterOnly(input, nil, true)
				rs, rl := ref.FilterOnly(input, nil, true)
				if !equalInt32(fs, rs) || !equalInt32(fl, rl) {
					t.Fatalf("%s W=%d input %d (len %d): candidate arrays diverge (accel %d/%d vs engine %d/%d)",
						name, width, ii, len(input), len(fs), len(fl), len(rs), len(rl))
				}
				if fm, rm := fast.collect(input), ref.collect(input); !patterns.EqualMatches(fm, rm) {
					t.Fatalf("%s W=%d input %d: matches diverge (%d vs %d)",
						name, width, ii, len(fm), len(rm))
				}
			}
			// Batch path: one call over the whole family must equal the
			// reference scanned buffer by buffer.
			type bm struct {
				buf int
				m   patterns.Match
			}
			var got []bm
			fast.ScanBatch(inputs, nil, func(buf int, m patterns.Match) {
				got = append(got, bm{buf, m})
			})
			var want []bm
			for bi, input := range inputs {
				ref.Scan(input, nil, func(m patterns.Match) { want = append(want, bm{bi, m}) })
			}
			if len(got) != len(want) {
				t.Fatalf("%s W=%d: batch %d matches vs serial reference %d", name, width, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s W=%d: batch match %d = %+v, want %+v", name, width, i, got[i], want[i])
				}
			}
		}
	}
}

// TestAccelSPatchMatchesPlain covers the S-PATCH rendition (split
// probes) and its instrumented skip path against the plain kernels.
func TestAccelSPatchMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for name, set := range accelCases() {
		on := NewSPatch(set, Options{})
		off := NewSPatch(set, Options{NoAccel: true})
		for ii, input := range accelInputs(set, rng) {
			os_, ol := on.FilterOnly(input, nil)
			ps, pl := off.FilterOnly(input, nil)
			if !equalInt32(os_, ps) || !equalInt32(ol, pl) {
				t.Fatalf("%s input %d: S-PATCH candidates diverge", name, ii)
			}
			if a, b := on.collect(input), off.collect(input); !patterns.EqualMatches(a, b) {
				t.Fatalf("%s input %d: S-PATCH matches diverge", name, ii)
			}
		}
	}
}

// TestAccelInstrumentedIdentical: the instrumented paths (counters
// attached — engine drive loop for V-PATCH, scalar loop with Next
// skipping for S-PATCH) must emit the same matches as their fused
// timing paths, and the skip accounting must cover every window.
func TestAccelInstrumentedIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for name, set := range accelCases() {
		vp := NewVPatch(set, VOptions{})
		sp := NewSPatch(set, Options{})
		for ii, input := range accelInputs(set, rng) {
			var timed, counted []patterns.Match
			vp.Scan(input, nil, func(m patterns.Match) { timed = append(timed, m) })
			var vc metrics.Counters
			vp.Scan(input, &vc, func(m patterns.Match) { counted = append(counted, m) })
			if !patterns.EqualMatches(timed, counted) {
				t.Fatalf("%s input %d: V-PATCH instrumented diverges", name, ii)
			}
			timed, counted = nil, nil
			sp.Scan(input, nil, func(m patterns.Match) { timed = append(timed, m) })
			var sc metrics.Counters
			sp.Scan(input, &sc, func(m patterns.Match) { counted = append(counted, m) })
			if !patterns.EqualMatches(timed, counted) {
				t.Fatalf("%s input %d: S-PATCH instrumented diverges", name, ii)
			}
			if n := len(input); n > 1 {
				// S-PATCH scalar loop: every window is either probed or
				// skipped, never both, never neither.
				if got := sc.Filter1Probes + sc.SkippedBytes; got != uint64(n-1) {
					t.Fatalf("%s input %d: probes %d + skipped %d != %d windows",
						name, ii, sc.Filter1Probes, sc.SkippedBytes, n-1)
				}
			}
		}
	}
}

// FuzzAccelFused fuzzes the fidelity property on arbitrary bytes: the
// accelerated fused path must equal the ForceEngine reference for every
// input and for both window and index-byte skip modes.
func FuzzAccelFused(f *testing.F) {
	f.Add([]byte("GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n"))
	f.Add([]byte{})
	f.Add([]byte{0, 1})
	f.Add([]byte("\x00\x01evil\x00\x01e"))
	f.Add([]byte("abababababab"))
	sets := accelCases()
	type pair struct{ fast, ref *VPatch }
	pairs := map[string]pair{}
	for name, set := range sets {
		pairs[name] = pair{
			fast: NewVPatch(set, VOptions{}),
			ref:  NewVPatch(set, VOptions{ForceEngine: true}),
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for name, p := range pairs {
			fs, fl := p.fast.FilterOnly(data, nil, true)
			rs, rl := p.ref.FilterOnly(data, nil, true)
			if !equalInt32(fs, rs) || !equalInt32(fl, rl) {
				t.Fatalf("%s: accelerated candidates diverge on %q", name, data)
			}
		}
	})
}
