package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vpatch/internal/engine"
	"vpatch/internal/patterns"
	"vpatch/internal/vec"
)

// The asm==SWAR parity property: every available kernel must produce
// candidate-for-candidate and match-for-match identical output to the
// ForceEngine reference rendition (the paper-faithful emulated path,
// which never touches the accel layer or the native kernels), across
// widths, rule-set densities, buffer lengths below/at/above the kernel
// lookaheads, unaligned sub-slices, and batch mode. This is the oracle
// discipline PR 5 established for accel, extended to the assembly.

// genBinarySet derives a sparser full-alphabet set (random bytes), the
// counterpart of genSet's dense 3-letter sets: between them the accel
// table lands in index-byte, window and off modes.
func genBinarySet(seed int64) *patterns.Set {
	rng := rand.New(rand.NewSource(seed ^ 0x5EED))
	set := patterns.NewSet()
	n := 1 + rng.Intn(8)
	for i := 0; i < n; i++ {
		l := 1 + rng.Intn(12)
		p := make([]byte, l)
		rng.Read(p)
		set.Add(p, rng.Intn(6) == 0, patterns.ProtoGeneric)
	}
	return set
}

// checkKernelParity runs one (set, input, width) case through every
// available kernel for both V-PATCH and S-PATCH and compares against
// the kernel-free references.
func checkKernelParity(t *testing.T, set *patterns.Set, input []byte, width int) {
	t.Helper()
	ref := NewVPatch(set, VOptions{Width: width, ForceEngine: true})
	rs, rl := ref.FilterOnly(input, nil, true)
	refMatches := ref.collect(input)
	spRef := NewSPatch(set, Options{ForceKernel: vec.KernelSWAR})
	sps, spl := spRef.FilterOnly(input, nil)
	for _, k := range vec.Kernels() {
		vp := NewVPatch(set, VOptions{Width: width, ForceKernel: k})
		ks, kl := vp.FilterOnly(input, nil, true)
		if !equalInt32(ks, rs) || !equalInt32(kl, rl) {
			t.Fatalf("kernel %v: V-PATCH candidates diverge from reference (len %d): short %d/%d long %d/%d",
				k, len(input), len(ks), len(rs), len(kl), len(rl))
		}
		if !patterns.EqualMatches(vp.collect(input), refMatches) {
			t.Fatalf("kernel %v: V-PATCH matches diverge from reference (len %d)", k, len(input))
		}
		sp := NewSPatch(set, Options{ForceKernel: k})
		ss, sl := sp.FilterOnly(input, nil)
		if !equalInt32(ss, sps) || !equalInt32(sl, spl) {
			t.Fatalf("kernel %v: S-PATCH candidates diverge from SWAR (len %d)", k, len(input))
		}
	}
}

func TestPropertyKernelParity(t *testing.T) {
	widths := []int{4, 8, 16}
	f := func(seed int64, sizeRaw uint16, off uint8) bool {
		width := widths[uint64(seed)%uint64(len(widths))]
		for _, set := range []*patterns.Set{genSet(seed), genBinarySet(seed)} {
			// Dense 3-letter traffic and uniform random traffic; lengths
			// sweep below the SSSE3/AVX2 lookaheads and past the chunk
			// boundary arithmetic.
			n := int(sizeRaw % 3000)
			dense := genInput(seed, n)
			rng := rand.New(rand.NewSource(seed ^ 0xF00D))
			random := make([]byte, n)
			rng.Read(random)
			for _, input := range [][]byte{dense, random} {
				checkKernelParity(t, set, input, width)
				// Unaligned sub-slice: base pointers at every alignment.
				if o := int(off % 64); o < len(input) {
					checkKernelParity(t, set, input[o:], width)
				}
			}
		}
		return true
	}
	max := 40
	if testing.Short() {
		max = 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: max}); err != nil {
		t.Fatal(err)
	}
}

// TestKernelParityShortInputs sweeps every length around the kernel
// block/lookahead boundaries (0..3x the AVX2 lookahead) — the exact
// off-by-one surface of the packEnd arithmetic.
func TestKernelParityShortInputs(t *testing.T) {
	set := genSet(3)
	bin := genBinarySet(3)
	rng := rand.New(rand.NewSource(99))
	for n := 0; n <= 3*vec.ViableLookahead; n++ {
		dense := genInput(int64(n), n)
		random := make([]byte, n)
		rng.Read(random)
		checkKernelParity(t, set, dense, 8)
		checkKernelParity(t, bin, random, 8)
	}
}

// TestKernelParityBatch drives the kernels through the native batch
// path: many small buffers sliced from one stream, compared against
// the naive per-buffer reference.
func TestKernelParityBatch(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		set := genSet(seed)
		stream := genInput(seed, 20000)
		rng := rand.New(rand.NewSource(seed))
		var bufs [][]byte
		for off := 0; off < len(stream); {
			l := rng.Intn(300)
			if off+l > len(stream) {
				l = len(stream) - off
			}
			bufs = append(bufs, stream[off:off+l])
			off += l + 1
		}
		type hit struct {
			buf int
			m   patterns.Match
		}
		var want []hit
		for bi, b := range bufs {
			for _, m := range patterns.FindAllNaive(set, b) {
				want = append(want, hit{bi, m})
			}
		}
		for _, k := range vec.Kernels() {
			vp := NewVPatch(set, VOptions{ForceKernel: k})
			scr := vp.NewScratch()
			var got []hit
			engine.ScanBatch(vp, scr, bufs, nil, func(buf int, m patterns.Match) {
				got = append(got, hit{buf, m})
			})
			if len(got) != len(want) {
				t.Fatalf("seed %d kernel %v: batch found %d matches, want %d", seed, k, len(got), len(want))
			}
			seen := map[hit]int{}
			for _, h := range got {
				seen[h]++
			}
			for _, h := range want {
				if seen[h] == 0 {
					t.Fatalf("seed %d kernel %v: batch missing %+v", seed, k, h)
				}
				seen[h]--
			}
		}
	}
}

// TestKernelInfoResolution pins what the dispatch reports.
func TestKernelInfoResolution(t *testing.T) {
	set := genSet(5)
	auto := NewVPatch(set, VOptions{})
	if got, want := auto.KernelInfo(), vec.Best().String(); got != want {
		t.Fatalf("auto kernel resolved to %q, want %q", got, want)
	}
	for _, k := range vec.Kernels() {
		vp := NewVPatch(set, VOptions{ForceKernel: k})
		if got := vp.KernelInfo(); got != k.String() {
			t.Fatalf("forced %v reports %q", k, got)
		}
		sp := NewSPatch(set, Options{ForceKernel: k})
		if got := sp.KernelInfo(); got != k.String() {
			t.Fatalf("S-PATCH forced %v reports %q", k, got)
		}
	}
}

// FuzzKernelParity is the fuzz rendition of the parity property: for
// arbitrary byte inputs, every kernel must match the naive reference
// on two fixed rule sets (one dense lowercase, one binary).
func FuzzKernelParity(f *testing.F) {
	f.Add([]byte("abcabcbcbcab"))
	f.Add([]byte{})
	f.Add([]byte{0x61})
	f.Add(genInput(1, 500))
	f.Add([]byte{0xff, 0x00, 0x61, 0x62, 0x63, 0x64, 0xff, 0x00})
	sets := []*patterns.Set{
		patterns.FromStrings("a", "ab", "abc", "bca", "cab", "abcd", "bcabca"),
		genBinarySet(17),
	}
	engines := make([][]*VPatch, len(sets))
	for i, set := range sets {
		for _, k := range vec.Kernels() {
			engines[i] = append(engines[i], NewVPatch(set, VOptions{ForceKernel: k, ChunkSize: 512}))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for i, set := range sets {
			want := patterns.FindAllNaive(set, data)
			for j, vp := range engines[i] {
				got := vp.collect(data)
				patterns.SortMatches(got)
				if !patterns.EqualMatches(got, want) {
					t.Fatalf("set %d kernel %v: %d matches, naive %d", i, vec.Kernels()[j], len(got), len(want))
				}
			}
		}
	})
}
