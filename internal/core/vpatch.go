package core

import (
	"vpatch/internal/bitarr"
	"vpatch/internal/engine"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/vec"
)

// VPatch is the vectorized algorithm of §IV-B. Its filtering round
// processes W input positions per step (Algorithm 2):
//
//  1. load raw input and shuffle it into W 2-byte sliding windows;
//  2. one gather on the *merged* filter-1/filter-2 memory brings both
//     filters' state for all W windows into the register (Fig. 3);
//  3. a movemask of the filter-1 bits stores hit positions into A_short;
//  4. if any lane passed filter 2, the 4-byte windows are built and
//     hashed *speculatively for all lanes*, one more gather probes
//     filter 3, and the result is masked by the filter-2 hits before
//     storing into A_long (the paper found masking cheaper than
//     compacting the register);
//  5. the main loop is unrolled 2x so the second block's gather can
//     overlap the first block's mask arithmetic.
//
// Verification is identical to S-PATCH's second round. Every deviation
// from this recipe is available as an ablation switch in VOptions.
//
// Like SPatch, the compiled matcher is immutable and all per-scan state
// lives in a Scratch, so one VPatch serves concurrent per-goroutine
// scratches.
type VPatch struct {
	common
	eng *vec.Engine
	opt VOptions

	// scr backs the scratch-less Scan/FilterOnly convenience methods
	// (single-goroutine; use ScanScratch for concurrent scans).
	// Allocated lazily so engines scanned only through sessions never
	// pay for it.
	scr *Scratch
}

var _ engine.Engine = (*VPatch)(nil)

// VOptions configures V-PATCH construction. The zero value is the
// paper's configuration at AVX2 width.
type VOptions struct {
	// Width is the register width in 32-bit lanes: 8 (AVX2/Haswell,
	// default) or 16 (Xeon Phi); 4 is also supported.
	Width int
	// Filter3Log2Bits sizes filter 3; 0 selects the 16 KB default.
	Filter3Log2Bits uint
	// ChunkSize is the filtering-round granularity; 0 selects 64 KB.
	ChunkSize int

	// Ablation switches (all default to the paper's design):
	// NoFilterMerge probes filters 1 and 2 with two separate gathers
	// instead of one merged gather.
	NoFilterMerge bool
	// NoUnroll disables the 2x main-loop unroll.
	NoUnroll bool
	// BranchyFilter3 replaces the speculative all-lane filter-3
	// evaluation with a per-active-lane scalar loop (the alternative the
	// paper rejected).
	BranchyFilter3 bool
	// ForceEngine routes even un-instrumented scans through the explicit
	// vector engine. By default, timing runs (nil counters, paper
	// configuration) use a fused rendition of the same computation —
	// merged filter word fetch + speculative filter 3, lane at a time —
	// because Go cannot express the register ops natively and the
	// per-op emulation overhead would otherwise swamp the measurement.
	// Candidate output is bit-identical either way (tested). ForceEngine
	// also disables the acceleration layer, making it the reference
	// rendition the accelerated paths are property-tested against.
	ForceEngine bool
	// NoAccel disables the skip-loop acceleration layer (fused.go),
	// forcing the plain probe kernels. Ablation/benchmark switch; not
	// serialized (databases load with acceleration rebuilt and on).
	NoAccel bool
	// ForceKernel pins the extract-loop kernel instead of the CPUID
	// auto-dispatch (vec.KernelAuto). A kernel the host cannot run
	// degrades to SWAR — the public API validates availability before
	// construction. Host state, not serialized: databases re-dispatch
	// on the loading host.
	ForceKernel vec.KernelID
}

// NewVPatch compiles the pattern set.
func NewVPatch(set *patterns.Set, opt VOptions) *VPatch {
	if opt.Width == 0 {
		opt.Width = 8
	}
	m := &VPatch{
		common: newCommon(set, opt.Filter3Log2Bits, opt.ChunkSize, opt.ForceKernel),
		eng:    vec.New(opt.Width),
		opt:    opt,
	}
	m.noAccel = opt.NoAccel
	return m
}

// builtinScratch lazily allocates the scratch behind the scratch-less
// convenience methods.
func (m *VPatch) builtinScratch() *Scratch {
	if m.scr == nil {
		m.scr = NewScratch()
	}
	return m.scr
}

// Width returns the vector width in lanes.
func (m *VPatch) Width() int { return m.eng.Width() }

// NewScratch allocates per-goroutine scan state (engine.Engine).
func (m *VPatch) NewScratch() engine.Scratch { return NewScratch() }

// ScanScratch scans input using scr as working memory. Calls with
// distinct scratches may run concurrently (engine.Engine).
func (m *VPatch) ScanScratch(scr engine.Scratch, input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	m.scan(scr.(*Scratch), input, c, emit)
}

// Scan reports every occurrence of every pattern in input. c and emit may
// be nil. Scan uses the matcher's built-in scratch and therefore must not
// be called from multiple goroutines at once; use ScanScratch for that.
func (m *VPatch) Scan(input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	m.scan(m.builtinScratch(), input, c, emit)
}

func (m *VPatch) scan(scr *Scratch, input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	if c != nil {
		c.BytesScanned += uint64(len(input))
	}
	n := len(input)
	for start := 0; start < n; start += m.chunk {
		end := start + m.chunk
		if end > n {
			end = n
		}
		var sw metrics.Stopwatch
		if c != nil {
			sw = metrics.Start()
		}
		m.filterChunk(scr, input, start, end, c, true)
		if c != nil {
			c.FilteringNs += sw.Stop()
			sw = metrics.Start()
		}
		m.verifyCandidates(scr, input, c, emit)
		if c != nil {
			c.VerifyNs += sw.Stop()
		}
	}
}

// FilterOnly runs only the filtering rounds. With stores=true candidate
// positions are accumulated and returned (Fig. 6 "V-PATCH-filtering+
// stores"); with stores=false the store step is suppressed and only
// counts are returned (Fig. 6 "V-PATCH-filtering").
func (m *VPatch) FilterOnly(input []byte, c *metrics.Counters, stores bool) (short, long []int32) {
	if c != nil {
		c.BytesScanned += uint64(len(input))
	}
	scr := m.builtinScratch()
	n := len(input)
	for start := 0; start < n; start += m.chunk {
		end := start + m.chunk
		if end > n {
			end = n
		}
		var sw metrics.Stopwatch
		if c != nil {
			sw = metrics.Start()
		}
		m.filterChunk(scr, input, start, end, c, stores)
		if c != nil {
			c.FilteringNs += sw.Stop()
		}
		if stores {
			short = append(short, scr.aShort...)
			long = append(long, scr.aLong...)
		}
	}
	return short, long
}

// filterChunk runs the vectorized filtering round over positions
// [start, end). Reads may extend up to 3 bytes past end (within input)
// because 4-byte windows straddle the chunk boundary, exactly like the
// scalar algorithm.
//
// Timing runs (nil counters, paper configuration) take the fused
// production kernel (fused.go): the same merged-word + speculative
// filter-3 computation with the skip-loop acceleration layer in front.
// Instrumented runs execute the explicit vector engine; unless
// ForceEngine pins the paper-faithful reference rendition, they skip
// ahead of each vector block with the same acceleration table, counting
// SkippedBytes/AccelChances/AccelRuns for the density story and the
// cost model. Candidate output is bit-identical on every path (tested).
func (m *VPatch) filterChunk(scr *Scratch, input []byte, start, end int, c *metrics.Counters, stores bool) {
	scr.aShort = scr.aShort[:0]
	scr.aLong = scr.aLong[:0]
	if c == nil && !m.opt.ForceEngine && !m.opt.NoFilterMerge && !m.opt.BranchyFilter3 {
		m.fusedRangeMerged(scr, input, start, end, stores)
		return
	}
	n := len(input)
	w := m.eng.Width()

	// Last vector base: all W lanes inside the chunk, and every lane's
	// 4-byte window inside the input.
	vecEnd := end - w
	if lim := n - w - 3; lim < vecEnd {
		vecEnd = lim
	}
	i := start
	if t := m.accel; t != nil && t.Enabled() && !m.noAccel && !m.opt.ForceEngine {
		// Accelerated drive loop: jump each vector block to the next
		// viable start position; the skipped positions cannot produce
		// candidates (their windows fail every loop-head filter).
		for i <= vecEnd {
			if !t.ViableAt(input, i) {
				j := t.Next(input, i+1, vecEnd+1)
				if c != nil {
					c.AccelChances++
					c.SkippedBytes += uint64(j - i)
					if j-i >= 8 {
						c.AccelRuns++
					}
				}
				i = j
				if i > vecEnd {
					break
				}
			}
			m.filterBlock(scr, input, i, c, stores)
			i += w
		}
	} else {
		if !m.opt.NoUnroll {
			// 2x unroll: two W-position blocks per iteration (two
			// independent register pipelines, paper §IV-B last paragraph).
			for ; i+w <= vecEnd; i += 2 * w {
				m.filterBlock(scr, input, i, c, stores)
				m.filterBlock(scr, input, i+w, c, stores)
			}
		}
		for ; i <= vecEnd; i += w {
			m.filterBlock(scr, input, i, c, stores)
		}
	}
	// Scalar tail: the final sub-register positions of the chunk.
	for ; i < end; i++ {
		m.scalarFilterPos(scr, input, i, n, c)
	}
	m.recordCandidates(scr, c)
}

// filterBlock filters the W positions base..base+W-1 (Algorithm 2 body).
func (m *VPatch) filterBlock(scr *Scratch, input []byte, base int, c *metrics.Counters, stores bool) {
	eng := m.eng
	fs := m.fs
	w := eng.Width()

	// Lines 7-8: raw load + shuffle into 2-byte windows.
	idx := eng.Windows2(input, base)
	byteIdx := eng.ShiftRightConst(idx, 3)
	bit := eng.AndConst(idx, 7)

	// Lines 9 & 13, merged (Fig. 3): one gather yields both filters.
	var hit1, hit2 vec.Mask
	if !m.opt.NoFilterMerge {
		words := eng.GatherU16(fs.Merged.Words(), byteIdx)
		hit1 = eng.TestBit(words, bit)
		hit2 = eng.TestBit(words, eng.AddConst(bit, 8))
		if c != nil {
			c.Gathers++
			c.MergedGathers++
		}
	} else {
		w1 := eng.GatherU8(fs.Filter1.Bytes(), byteIdx)
		w2 := eng.GatherU8(fs.Filter2.Bytes(), byteIdx)
		hit1 = eng.TestBit(w1, bit)
		hit2 = eng.TestBit(w2, bit)
		if c != nil {
			c.Gathers += 2
		}
	}
	if c != nil {
		c.VectorIters++
		c.Filter1Probes += uint64(w)
		c.Filter2Probes += uint64(w)
	}

	// Lines 10-12: store filter-1 hits into A_short.
	if hit1.Any() {
		if stores {
			scr.aShort = eng.CompressStore(scr.aShort, int32(base), hit1)
		} else {
			scr.sink ^= uint32(hit1)
		}
	}

	// Lines 14-20: speculative filter 3, masked by the filter-2 hits.
	if !hit2.Any() {
		return
	}
	if c != nil {
		c.Filter3Blocks++
		c.Filter3UsefulLanes += uint64(hit2.Count())
	}
	var hit3 vec.Mask
	if m.opt.BranchyFilter3 {
		// The rejected alternative: per-lane scalar probing of only the
		// useful lanes.
		hit2.ForEach(func(lane int) {
			if c != nil {
				c.Filter3Probes++
			}
			if fs.Filter3.Test4(bitarr.Load4(input[base+lane:])) {
				hit3 |= 1 << lane
			}
		})
	} else {
		// Speculative: hash and gather for all W lanes, then mask.
		vals := eng.Windows4(input, base)
		keys := eng.ShiftRightConst(eng.MulConst(vals, bitarr.MulHashConst), fs.Filter3.Shift())
		f3words := eng.GatherU8(fs.Filter3.Bytes(), eng.ShiftRightConst(keys, 3))
		hit3 = eng.TestBit(f3words, eng.AndConst(keys, 7)) & hit2
		if c != nil {
			c.Gathers++
			c.Filter3Probes += uint64(w)
		}
	}
	if hit3.Any() {
		if stores {
			scr.aLong = eng.CompressStore(scr.aLong, int32(base), hit3)
		} else {
			scr.sink ^= uint32(hit3) << 16
		}
	}
}
