package core

import (
	"vpatch/internal/bitarr"
	"vpatch/internal/engine"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/vec"
)

// Batch scanning: V-PATCH's native many-buffers-per-call path.
//
// The serial filtering round assigns the W lanes of a register to W
// *consecutive positions of one buffer*, so on a small input (a single
// network packet) most of the scan is sub-register tail and per-call
// setup — the weakness the paper's own small-input discussion (Fig. 5b,
// §V) exposes. Batch mode inverts the assignment: each lane walks a
// *different* buffer of the batch, one position per step, so
//
//   - one merged filter gather serves W different packets,
//   - a lane whose packet drains refills from the pending queue instead
//     of idling, keeping lane occupancy near 100% regardless of packet
//     size (measured by Counters.BatchLaneFrac), and
//   - candidate stores carry (buffer, position) pairs, flushed through
//     the shared verification round at a cache-sized watermark.
//
// Like the serial scan, instrumented runs execute the explicit vector
// engine (per-op emulated registers, exact gather/lane statistics);
// timing runs (nil counters, paper configuration) use a fused rendition
// of the same computation whose per-buffer match output is identical
// (tested), keeping the structural wins that survive without SIMD
// hardware: one call for the whole batch, half the filter lookups
// (merging), and verification flushes amortized across buffers.

var _ engine.BatchEngine = (*VPatch)(nil)

// ScanBatchScratch scans every buffer of inputs using scr as working
// memory, reporting each match with its buffer index (engine.BatchEngine).
// Per-buffer match semantics are identical to ScanScratch on that buffer
// alone. Calls with distinct scratches may run concurrently.
func (m *VPatch) ScanBatchScratch(scr engine.Scratch, inputs [][]byte, c *metrics.Counters, emit engine.BatchEmitFunc) {
	m.scanBatch(scr.(*Scratch), inputs, c, emit)
}

// ScanBatch scans a batch with the matcher's built-in scratch
// (single-goroutine; use ScanBatchScratch for concurrent scans).
func (m *VPatch) ScanBatch(inputs [][]byte, c *metrics.Counters, emit engine.BatchEmitFunc) {
	m.scanBatch(m.builtinScratch(), inputs, c, emit)
}

func (m *VPatch) scanBatch(scr *Scratch, inputs [][]byte, c *metrics.Counters, emit engine.BatchEmitFunc) {
	scr.bShort = scr.bShort[:0]
	scr.bLong = scr.bLong[:0]
	if c != nil {
		for _, in := range inputs {
			c.BytesScanned += uint64(len(in))
		}
	}
	if c == nil && !m.opt.ForceEngine && !m.opt.NoFilterMerge && !m.opt.BranchyFilter3 {
		m.fusedScanBatch(scr, inputs, emit)
		return
	}
	m.laneScanBatch(scr, inputs, c, emit)
}

// laneScanBatch is the explicit lane-per-packet filtering round on the
// emulated vector engine. Buffers with fewer than 4 bytes never enter a
// lane (no full 4-byte window exists); they run entirely through the
// scalar chain at refill time, exactly like the serial scalar tail.
func (m *VPatch) laneScanBatch(scr *Scratch, inputs [][]byte, c *metrics.Counters, emit engine.BatchEmitFunc) {
	eng := m.eng
	w := eng.Width()
	var cur vec.Cursors
	var lim [vec.MaxLanes]int32 // last vector-walkable position per lane
	var active vec.Mask
	next := 0

	var sw metrics.Stopwatch
	if c != nil {
		sw = metrics.Start() // before the first refill: it already filters
	}
	// flush runs the verification round once a candidate array reaches
	// the cache-residency watermark.
	flush := func() {
		if len(scr.bShort) < batchFlushCandidates && len(scr.bLong) < batchFlushCandidates {
			return
		}
		if c != nil {
			c.FilteringNs += sw.Stop()
		}
		m.verifyBatch(scr, inputs, c, emit)
		if c != nil {
			sw = metrics.Start()
		}
	}
	// refill hands lane l the next pending buffer, draining any buffer
	// too short for vector stepping through the scalar chain on the way
	// (flushing per drained buffer — a run of tiny buffers must not grow
	// the candidate arrays past the watermark).
	refill := func(l int) {
		for next < len(inputs) {
			b := next
			next++
			n := len(inputs[b])
			if n >= 4 {
				cur.Buf[l] = int32(b)
				cur.Pos[l] = 0
				lim[l] = int32(n - 4)
				active |= 1 << l
				return
			}
			for i := 0; i < n; i++ {
				m.scalarFilterPosBatch(scr, inputs[b], int32(b), i, n, c)
			}
			flush()
		}
		active &^= 1 << l
	}
	for l := 0; l < w; l++ {
		refill(l)
	}
	for active.Any() {
		m.batchFilterStep(scr, inputs, &cur, active, c)
		eng.Advance(&cur, active)
		// Drain lanes whose buffer ran out of vector positions: finish
		// the buffer's sub-register tail scalar, then refill the lane.
		for l := 0; l < w; l++ {
			if !active.Test(l) || cur.Pos[l] <= lim[l] {
				continue
			}
			b := cur.Buf[l]
			n := len(inputs[b])
			for i := int(cur.Pos[l]); i < n; i++ {
				m.scalarFilterPosBatch(scr, inputs[b], b, i, n, c)
			}
			refill(l)
		}
		flush()
	}
	if c != nil {
		c.FilteringNs += sw.Stop()
	}
	m.verifyBatch(scr, inputs, c, emit)
}

// batchFilterStep runs one lane-per-packet filtering step over the
// active lanes: the Algorithm 2 body with the W consecutive windows of
// one buffer replaced by one window from each of W buffers.
func (m *VPatch) batchFilterStep(scr *Scratch, inputs [][]byte, cur *vec.Cursors, active vec.Mask, c *metrics.Counters) {
	eng := m.eng
	fs := m.fs

	if c != nil {
		c.BatchIters++
		c.BatchActiveLanes += uint64(active.Count())
		c.Filter1Probes += uint64(active.Count())
		c.Filter2Probes += uint64(active.Count())
	}

	// One cross-buffer gather builds the W 2-byte windows.
	idx := eng.GatherWindows2(inputs, cur, active)
	byteIdx := eng.ShiftRightConst(idx, 3)
	bit := eng.AndConst(idx, 7)

	// Merged filter-1/filter-2 fetch, exactly as in the serial round.
	var hit1, hit2 vec.Mask
	if !m.opt.NoFilterMerge {
		words := eng.GatherU16(fs.Merged.Words(), byteIdx)
		hit1 = eng.TestBit(words, bit) & active
		hit2 = eng.TestBit(words, eng.AddConst(bit, 8)) & active
		if c != nil {
			c.Gathers++
			c.MergedGathers++
		}
	} else {
		w1 := eng.GatherU8(fs.Filter1.Bytes(), byteIdx)
		w2 := eng.GatherU8(fs.Filter2.Bytes(), byteIdx)
		hit1 = eng.TestBit(w1, bit) & active
		hit2 = eng.TestBit(w2, bit) & active
		if c != nil {
			c.Gathers += 2
		}
	}

	if hit1.Any() {
		scr.bShort = eng.CompressStoreCursors(scr.bShort, cur, hit1)
	}

	// Speculative filter 3 over the active lanes, masked by filter-2
	// hits (the serial design's choice, unchanged).
	if !hit2.Any() {
		return
	}
	if c != nil {
		c.Filter3Blocks++
		c.Filter3UsefulLanes += uint64(hit2.Count())
	}
	var hit3 vec.Mask
	if m.opt.BranchyFilter3 {
		hit2.ForEach(func(lane int) {
			if c != nil {
				c.Filter3Probes++
			}
			b := inputs[cur.Buf[lane]]
			if fs.Filter3.Test4(bitarr.Load4(b[cur.Pos[lane]:])) {
				hit3 |= 1 << lane
			}
		})
	} else {
		vals := eng.GatherWindows4(inputs, cur, active)
		keys := eng.ShiftRightConst(eng.MulConst(vals, bitarr.MulHashConst), fs.Filter3.Shift())
		f3words := eng.GatherU8(fs.Filter3.Bytes(), eng.ShiftRightConst(keys, 3))
		hit3 = eng.TestBit(f3words, eng.AndConst(keys, 7)) & hit2
		if c != nil {
			c.Gathers++
			c.Filter3Probes += uint64(active.Count())
		}
	}
	if hit3.Any() {
		scr.bLong = eng.CompressStoreCursors(scr.bLong, cur, hit3)
	}
}

// fusedScanBatch is the timing-run rendition of the batch scan: the
// fused production kernel (fused.go — skip-loop acceleration plus the
// SWAR probe chain, exactly the serial timing path) run buffer by
// buffer with one emit adapter for the whole batch, so per-buffer match
// output is identical to the lane path (tested) and the batch call is
// serial-scan work minus the per-packet call and setup overhead that
// dominates small-packet scanning. Candidates stay in the serial int32
// arrays and verify per chunk, exactly like a serial scan.
func (m *VPatch) fusedScanBatch(scr *Scratch, inputs [][]byte, emit engine.BatchEmitFunc) {
	buf := 0
	var wrap patterns.EmitFunc
	if emit != nil {
		wrap = func(mm patterns.Match) { emit(buf, mm) }
	}
	for b, input := range inputs {
		buf = b
		n := len(input)
		// Buffers larger than one chunk keep the serial two-round chunk
		// granularity; a small packet is one chunk.
		for start := 0; start < n; start += m.chunk {
			end := start + m.chunk
			if end > n {
				end = n
			}
			scr.aShort = scr.aShort[:0]
			scr.aLong = scr.aLong[:0]
			m.fusedRangeMerged(scr, input, start, end, true)
			m.verifyCandidates(scr, input, nil, wrap)
		}
	}
}
