package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vpatch/internal/patterns"
)

// Property-based invariants of the two-round design, via testing/quick.

// genSet derives a small pattern set from a seed: tiny alphabet so
// collisions, overlaps and shared prefixes are frequent.
func genSet(seed int64) *patterns.Set {
	rng := rand.New(rand.NewSource(seed))
	set := patterns.NewSet()
	n := 1 + rng.Intn(12)
	for i := 0; i < n; i++ {
		l := 1 + rng.Intn(10)
		p := make([]byte, l)
		for j := range p {
			p[j] = byte('a' + rng.Intn(3))
		}
		set.Add(p, rng.Intn(5) == 0, patterns.ProtoGeneric)
	}
	return set
}

func genInput(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed ^ 0xABCD))
	input := make([]byte, n)
	for i := range input {
		input[i] = byte('a' + rng.Intn(3))
	}
	return input
}

// Property: every position a pattern occurs at appears in the candidate
// arrays (filters never produce false negatives).
func TestPropertyFiltersNoFalseNegatives(t *testing.T) {
	f := func(seed int64, sizeRaw uint16) bool {
		set := genSet(seed)
		input := genInput(seed, 50+int(sizeRaw%1000))
		sp := NewSPatch(set, Options{})
		short, long := sp.FilterOnly(input, nil)
		inShort := map[int32]bool{}
		for _, p := range short {
			inShort[p] = true
		}
		inLong := map[int32]bool{}
		for _, p := range long {
			inLong[p] = true
		}
		for _, m := range patterns.FindAllNaive(set, input) {
			p := set.Pattern(m.PatternID)
			if p.IsShort() {
				if !inShort[m.Pos] {
					return false
				}
			} else if !inLong[m.Pos] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: candidate arrays are strictly increasing (each position
// stored at most once, in scan order) within every chunk scan.
func TestPropertyCandidateArraysSortedUnique(t *testing.T) {
	f := func(seed int64) bool {
		set := genSet(seed)
		input := genInput(seed, 700)
		vp := NewVPatch(set, VOptions{ChunkSize: 1 << 20})
		short, long := vp.FilterOnly(input, nil, true)
		for _, arr := range [][]int32{short, long} {
			for i := 1; i < len(arr); i++ {
				if arr[i] <= arr[i-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: scan output is independent of chunk size.
func TestPropertyChunkInvariance(t *testing.T) {
	f := func(seed int64, chunkRaw uint16) bool {
		set := genSet(seed)
		input := genInput(seed, 900)
		chunk := 32 + int(chunkRaw%2048)
		a := NewSPatch(set, Options{}).collect(input)
		b := NewSPatch(set, Options{ChunkSize: chunk}).collect(input)
		c := NewVPatch(set, VOptions{ChunkSize: chunk}).collect(input)
		return patterns.EqualMatches(a, b) && patterns.EqualMatches(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func (m *SPatch) collect(input []byte) []patterns.Match {
	var out []patterns.Match
	m.Scan(input, nil, func(mm patterns.Match) { out = append(out, mm) })
	return out
}

func (m *VPatch) collect(input []byte) []patterns.Match {
	var out []patterns.Match
	m.Scan(input, nil, func(mm patterns.Match) { out = append(out, mm) })
	return out
}

// Property: the engine path and the fused fast path produce identical
// candidates for arbitrary inputs (the fidelity claim of vpatch.go's
// ForceEngine documentation).
func TestPropertyEnginePathEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		set := genSet(seed)
		input := genInput(seed, 600)
		fast := NewVPatch(set, VOptions{})
		engine := NewVPatch(set, VOptions{ForceEngine: true})
		fs, fl := fast.FilterOnly(input, nil, true)
		es, el := engine.FilterOnly(input, nil, true)
		return equalInt32(fs, es) && equalInt32(fl, el)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
