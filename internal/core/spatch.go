package core

import (
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
)

// SPatch is the scalar algorithm of §IV-A: DFC's filtering redesigned for
// realistic traffic (dedicated short-pattern filter, 4-byte corroboration
// for long patterns) and restructured into separate filtering and
// verification rounds.
type SPatch struct {
	common
}

// Options configures S-PATCH construction.
type Options struct {
	// Filter3Log2Bits sizes filter 3 (2^n bits); 0 selects the 16 KB
	// default. Larger filters collide less but crowd the cache.
	Filter3Log2Bits uint
	// ChunkSize is the filtering-round granularity; 0 selects 64 KB.
	ChunkSize int
}

// NewSPatch compiles the pattern set.
func NewSPatch(set *patterns.Set, opt Options) *SPatch {
	return &SPatch{common: newCommon(set, opt.Filter3Log2Bits, opt.ChunkSize)}
}

// Scan reports every occurrence of every pattern in input. c and emit may
// be nil.
func (m *SPatch) Scan(input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	if c != nil {
		c.BytesScanned += uint64(len(input))
	}
	n := len(input)
	for start := 0; start < n; start += m.chunk {
		end := start + m.chunk
		if end > n {
			end = n
		}
		var sw metrics.Stopwatch
		if c != nil {
			sw = metrics.Start()
		}
		m.filterChunk(input, start, end, c)
		if c != nil {
			c.FilteringNs += sw.Stop()
			sw = metrics.Start()
		}
		m.verifyCandidates(input, c, emit)
		if c != nil {
			c.VerifyNs += sw.Stop()
		}
	}
}

// filterChunk runs the filtering round over positions [start, end),
// filling the candidate arrays.
func (m *SPatch) filterChunk(input []byte, start, end int, c *metrics.Counters) {
	m.aShort = m.aShort[:0]
	m.aLong = m.aLong[:0]
	n := len(input)
	for i := start; i < end; i++ {
		m.scalarFilterPos(input, i, n, c)
	}
	m.recordCandidates(c)
}

// FilterOnly runs only the filtering rounds over the whole input and
// returns copies of the accumulated candidate positions. It is the
// "S-PATCH-filtering" measurement of Fig. 6.
func (m *SPatch) FilterOnly(input []byte, c *metrics.Counters) (short, long []int32) {
	if c != nil {
		c.BytesScanned += uint64(len(input))
	}
	n := len(input)
	for start := 0; start < n; start += m.chunk {
		end := start + m.chunk
		if end > n {
			end = n
		}
		var sw metrics.Stopwatch
		if c != nil {
			sw = metrics.Start()
		}
		m.filterChunk(input, start, end, c)
		if c != nil {
			c.FilteringNs += sw.Stop()
		}
		short = append(short, m.aShort...)
		long = append(long, m.aLong...)
	}
	return short, long
}
