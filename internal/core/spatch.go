package core

import (
	"vpatch/internal/engine"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/vec"
)

// SPatch is the scalar algorithm of §IV-A: DFC's filtering redesigned for
// realistic traffic (dedicated short-pattern filter, 4-byte corroboration
// for long patterns) and restructured into separate filtering and
// verification rounds. The compiled matcher is immutable; scans carry
// their working memory in a Scratch, so one SPatch may be shared by any
// number of goroutines each scanning with its own Scratch.
type SPatch struct {
	common

	// scr backs the scratch-less Scan/FilterOnly convenience methods,
	// which therefore remain single-goroutine (use ScanScratch with
	// per-goroutine scratches for concurrent scans). Allocated lazily so
	// engines scanned only through sessions never pay for it.
	scr *Scratch
}

var _ engine.Engine = (*SPatch)(nil)

// Options configures S-PATCH construction.
type Options struct {
	// Filter3Log2Bits sizes filter 3 (2^n bits); 0 selects the 16 KB
	// default. Larger filters collide less but crowd the cache.
	Filter3Log2Bits uint
	// ChunkSize is the filtering-round granularity; 0 selects 64 KB.
	ChunkSize int
	// NoAccel disables the skip-loop acceleration layer (fused.go),
	// forcing the plain probe loops. Ablation/benchmark switch; not
	// serialized.
	NoAccel bool
	// ForceKernel pins the extract-loop kernel instead of the CPUID
	// auto-dispatch (see core.VOptions.ForceKernel).
	ForceKernel vec.KernelID
}

// NewSPatch compiles the pattern set.
func NewSPatch(set *patterns.Set, opt Options) *SPatch {
	m := &SPatch{common: newCommon(set, opt.Filter3Log2Bits, opt.ChunkSize, opt.ForceKernel)}
	m.noAccel = opt.NoAccel
	return m
}

// builtinScratch lazily allocates the scratch behind the scratch-less
// convenience methods.
func (m *SPatch) builtinScratch() *Scratch {
	if m.scr == nil {
		m.scr = NewScratch()
	}
	return m.scr
}

// NewScratch allocates per-goroutine scan state (engine.Engine).
func (m *SPatch) NewScratch() engine.Scratch { return NewScratch() }

// ScanScratch scans input using scr as working memory. Calls with
// distinct scratches may run concurrently (engine.Engine).
func (m *SPatch) ScanScratch(scr engine.Scratch, input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	m.scan(scr.(*Scratch), input, c, emit)
}

// Scan reports every occurrence of every pattern in input. c and emit may
// be nil. Scan uses the matcher's built-in scratch and therefore must not
// be called from multiple goroutines at once; use ScanScratch for that.
func (m *SPatch) Scan(input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	m.scan(m.builtinScratch(), input, c, emit)
}

func (m *SPatch) scan(scr *Scratch, input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	if c != nil {
		c.BytesScanned += uint64(len(input))
	}
	n := len(input)
	for start := 0; start < n; start += m.chunk {
		end := start + m.chunk
		if end > n {
			end = n
		}
		var sw metrics.Stopwatch
		if c != nil {
			sw = metrics.Start()
		}
		m.filterChunk(scr, input, start, end, c)
		if c != nil {
			c.FilteringNs += sw.Stop()
			sw = metrics.Start()
		}
		m.verifyCandidates(scr, input, c, emit)
		if c != nil {
			c.VerifyNs += sw.Stop()
		}
	}
}

// filterChunk runs the filtering round over positions [start, end),
// filling the candidate arrays. Timing runs (nil counters) take the
// fused production kernel (fused.go) — skip loop plus SWAR probe chain
// with S-PATCH's split filter-1/filter-2 probes; instrumented runs keep
// the per-position scalar chain, skipping ahead of provably-impossible
// positions with the acceleration table and counting the skips.
func (m *SPatch) filterChunk(scr *Scratch, input []byte, start, end int, c *metrics.Counters) {
	scr.aShort = scr.aShort[:0]
	scr.aLong = scr.aLong[:0]
	if c == nil {
		m.fusedRangeSplit(scr, input, start, end)
		return
	}
	n := len(input)
	t := m.accel
	useAccel := t != nil && t.Enabled() && !m.noAccel
	// Window-viability skipping needs a full 2-byte window; the final
	// byte (HasLen1 special case) always reaches the scalar chain.
	skipEnd := end
	if n-1 < skipEnd {
		skipEnd = n - 1
	}
	for i := start; i < end; i++ {
		if useAccel && i < skipEnd && !t.ViableAt(input, i) {
			j := t.Next(input, i+1, skipEnd)
			c.AccelChances++
			c.SkippedBytes += uint64(j - i)
			if j-i >= 8 {
				c.AccelRuns++
			}
			i = j
			if i >= end {
				break
			}
		}
		m.scalarFilterPos(scr, input, i, n, c)
	}
	m.recordCandidates(scr, c)
}

// FilterOnly runs only the filtering rounds over the whole input and
// returns copies of the accumulated candidate positions. It is the
// "S-PATCH-filtering" measurement of Fig. 6.
func (m *SPatch) FilterOnly(input []byte, c *metrics.Counters) (short, long []int32) {
	if c != nil {
		c.BytesScanned += uint64(len(input))
	}
	scr := m.builtinScratch()
	n := len(input)
	for start := 0; start < n; start += m.chunk {
		end := start + m.chunk
		if end > n {
			end = n
		}
		var sw metrics.Stopwatch
		if c != nil {
			sw = metrics.Start()
		}
		m.filterChunk(scr, input, start, end, c)
		if c != nil {
			c.FilteringNs += sw.Stop()
		}
		short = append(short, scr.aShort...)
		long = append(long, scr.aLong...)
	}
	return short, long
}
