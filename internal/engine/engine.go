// Package engine defines the contract every internal matching engine
// implements so the public API can split compilation from scanning:
// an Engine is the *compiled* form of one matcher — every byte of it is
// read-only after construction, so a single Engine may be scanned from
// any number of goroutines — while all mutable per-scan working memory
// (candidate arrays, vector-lane sinks, accumulators) lives in a
// Scratch that each goroutine owns privately.
//
// This is the immutable-database / per-thread-scratch split production
// matchers (Hyperscan, YARA) use, and the structure the paper's
// multi-core scaling argument assumes: one compiled pattern-matching
// structure shared by all hardware threads, each operating independently
// on its part of the stream.
package engine

import (
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
)

// Scratch is the opaque per-goroutine mutable state of one engine's
// scan. Engines whose compiled state is their only scan state (their
// Scan keeps everything in locals) return nil. A Scratch must never be
// used by two goroutines at once; distinct Scratches over the same
// Engine are fully independent.
type Scratch = any

// Engine is the compiled, immutable, goroutine-safe form of one
// matching algorithm.
type Engine interface {
	// NewScratch allocates the mutable working memory one goroutine
	// needs to scan with this engine (nil for stateless engines).
	NewScratch() Scratch
	// ScanScratch scans input using scr as working memory, reporting
	// every occurrence of every pattern. Calls with distinct scratches
	// may run concurrently; c and emit may be nil.
	ScanScratch(scr Scratch, input []byte, c *metrics.Counters, emit patterns.EmitFunc)
}
