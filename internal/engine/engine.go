// Package engine defines the contract every internal matching engine
// implements so the public API can split compilation from scanning:
// an Engine is the *compiled* form of one matcher — every byte of it is
// read-only after construction, so a single Engine may be scanned from
// any number of goroutines — while all mutable per-scan working memory
// (candidate arrays, vector-lane sinks, accumulators) lives in a
// Scratch that each goroutine owns privately.
//
// This is the immutable-database / per-thread-scratch split production
// matchers (Hyperscan, YARA) use, and the structure the paper's
// multi-core scaling argument assumes: one compiled pattern-matching
// structure shared by all hardware threads, each operating independently
// on its part of the stream.
package engine

import (
	"vpatch/internal/accel"
	"vpatch/internal/dbfmt"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
)

// Scratch is the opaque per-goroutine mutable state of one engine's
// scan. Engines whose compiled state is their only scan state (their
// Scan keeps everything in locals) return nil. A Scratch must never be
// used by two goroutines at once; distinct Scratches over the same
// Engine are fully independent.
type Scratch = any

// Engine is the compiled, immutable, goroutine-safe form of one
// matching algorithm.
type Engine interface {
	// NewScratch allocates the mutable working memory one goroutine
	// needs to scan with this engine (nil for stateless engines).
	NewScratch() Scratch
	// ScanScratch scans input using scr as working memory, reporting
	// every occurrence of every pattern. Calls with distinct scratches
	// may run concurrently; c and emit may be nil.
	ScanScratch(scr Scratch, input []byte, c *metrics.Counters, emit patterns.EmitFunc)
}

// DBCodec extends Engine with compiled-database serialization: the
// engine flattens its entire compiled state — everything Scan reads
// except the pattern set, which the database container serializes
// separately — into an Encoder. Every engine in this repository
// implements DBCodec; the matching decoder is a package-level function
// (the decode side cannot be a method, it constructs the engine).
// Decoders restore an engine that is scan-for-scan identical to the one
// encoded, including batch paths, and validate every array bound so a
// corrupt section yields an error, never a panic.
type DBCodec interface {
	Engine
	// EncodeCompiled appends the engine's compiled state to e.
	EncodeCompiled(e *dbfmt.Encoder)
}

// Sizer is implemented by engines that can report the resident size of
// their compiled state (filters, automata, verification tables). Used
// by the public Engine.Info.
type Sizer interface {
	MemoryFootprint() int
}

// AccelReporter is implemented by engines that carry a skip-loop
// acceleration layer (S-PATCH, V-PATCH, DFC). Used by the public
// Engine.Info to surface the selected skip mode and the rule set's
// start-window density.
type AccelReporter interface {
	AccelInfo() accel.Info
}

// KernelReporter is implemented by engines whose filtering round
// dispatches to a CPU-specific extract kernel (S-PATCH, V-PATCH). It
// reports the kernel resolved at Compile/Deserialize time ("avx2",
// "ssse3", "swar"); the public Engine.Info and the serve daemon's
// /metrics surface it.
type KernelReporter interface {
	KernelInfo() string
}

// BatchEmitFunc receives matches found by a batch scan: buf is the
// index within the batch of the buffer the match occurred in, and the
// match's Pos is relative to that buffer. nil means count-only.
type BatchEmitFunc func(buf int, m patterns.Match)

// BatchEngine is implemented by engines with a native
// many-buffers-per-call scan path — for V-PATCH, lane-per-packet
// filtering, where each vector lane walks a different buffer of the
// batch so one gather serves W buffers and small inputs no longer leave
// lanes empty. Engines without a native path are driven through the
// ScanBatch fallback instead.
type BatchEngine interface {
	Engine
	// ScanBatchScratch scans every buffer of inputs using scr as working
	// memory, reporting each match with its buffer index. Per-buffer
	// match semantics are identical to ScanScratch on that buffer alone.
	// Calls with distinct scratches may run concurrently; c and emit may
	// be nil.
	ScanBatchScratch(scr Scratch, inputs [][]byte, c *metrics.Counters, emit BatchEmitFunc)
}

// ScanBatch scans every buffer of inputs through e: engines
// implementing BatchEngine take their native batch path, all others a
// serial per-buffer fallback loop with identical per-buffer semantics.
// This is the one entry point upper layers use, so every algorithm is
// batch-callable regardless of whether batching helps it.
func ScanBatch(e Engine, scr Scratch, inputs [][]byte, c *metrics.Counters, emit BatchEmitFunc) {
	if be, ok := e.(BatchEngine); ok {
		be.ScanBatchScratch(scr, inputs, c, emit)
		return
	}
	cur := 0
	var wrap patterns.EmitFunc
	if emit != nil {
		wrap = func(m patterns.Match) { emit(cur, m) }
	}
	for i, input := range inputs {
		cur = i
		e.ScanScratch(scr, input, c, wrap)
	}
}
