// Package ffbf implements a feed-forward-Bloom-filter matcher after
// Moraru & Andersen, "Exact Pattern Matching with Feed-Forward Bloom
// Filters" (JEA 2012) — reference [13] of the paper and the other member
// of the cache-resident filtering family it builds on ("operate on the
// same idea: the input is filtered using cache resident data structures,
// and only the interesting parts of the input are forwarded").
//
// Patterns of at least ShingleLen bytes register their leading
// ShingleLen-byte shingle in a cache-sized Bloom filter with k hash
// functions. The scan slides a ShingleLen window over the input and
// probes the Bloom filter; positive positions are forwarded to exact
// verification. The *feed-forward* aspect is retained as pattern-set
// reduction: each pattern remembers its filter bits, and after a scan
// the matcher reports which patterns were even possible given the bits
// the input actually touched (FeedForward.PossiblePatterns) — the
// statistic Moraru & Andersen use to shrink their exact-match phase.
//
// Patterns shorter than the shingle cannot participate in a fixed-width
// shingle filter (the documented FFBF limitation; the paper's §VI also
// notes fixed-width fingerprint schemes "require that the patterns are
// long"). They are handled by an 8 KB 2-byte direct filter and their own
// verifier, exactly like the short-pattern path of the DFC family.
package ffbf

import (
	"vpatch/internal/bitarr"
	"vpatch/internal/engine"
	"vpatch/internal/filters"
	"vpatch/internal/hashtab"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
)

// ShingleLen is the Bloom-filter shingle size in bytes.
const ShingleLen = 8

// DefaultLog2Bits sizes the Bloom filter at 2^18 bits = 32 KB (one L1
// data cache — the cache-residency constraint FFBF is built around).
const DefaultLog2Bits = 18

// numHashes is k, the number of Bloom hash functions.
const numHashes = 3

// Matcher is a compiled FFBF matcher. The Bloom filter and verification
// tables are immutable after Build; the shingle window and hash state of
// a scan are locals (ScanFeedForward's touched-bit recording allocates
// its own FeedForward per call), so one Matcher may scan from any number
// of goroutines concurrently.
type Matcher struct {
	set *patterns.Set

	// Long patterns (>= ShingleLen): Bloom filter + dedicated verifier.
	bloom       *bitarr.BitArray
	longVerify  *hashtab.Verifier
	longIDs     []int32
	longBits    [][numHashes]uint32
	foldedProbe bool // any nocase long pattern => probe folded windows

	// Short patterns (< ShingleLen): 2-byte direct filter + verifier.
	shortFilter *bitarr.DirectFilter16
	shortVerify *hashtab.Verifier

	hasShort bool
	hasLong  bool
	hasLen1  bool
	log2bits uint
}

// Options configures Build.
type Options struct {
	// Log2Bits sizes the Bloom filter as 2^n bits; 0 selects the 32 KB
	// default.
	Log2Bits uint
}

func isLong(p *patterns.Pattern) bool { return len(p.Data) >= ShingleLen }

// Build compiles the pattern set.
func Build(set *patterns.Set, opt Options) *Matcher {
	log2 := opt.Log2Bits
	if log2 == 0 {
		log2 = DefaultLog2Bits
	}
	m := &Matcher{
		set:         set,
		bloom:       bitarr.New(log2),
		shortFilter: bitarr.NewDirectFilter16(),
		log2bits:    log2,
		longVerify:  hashtab.BuildFiltered(set, isLong),
		shortVerify: hashtab.BuildFiltered(set, func(p *patterns.Pattern) bool { return !isLong(p) }),
	}
	pats := set.Patterns()
	for i := range pats {
		if p := &pats[i]; isLong(p) && p.Nocase {
			m.foldedProbe = true
			break
		}
	}
	for i := range pats {
		p := &pats[i]
		if isLong(p) {
			m.hasLong = true
			m.addLong(p)
			continue
		}
		m.hasShort = true
		if len(p.Data) == 1 {
			m.hasLen1 = true
		}
		filters.AddPrefix2(m.shortFilter, p)
	}
	return m
}

// addLong registers the leading shingle of a long pattern. When the set
// contains nocase long patterns the probe folds input windows, so every
// pattern registers its folded shingle (exactness is restored by the
// verifier); otherwise raw bytes are used throughout.
func (m *Matcher) addLong(p *patterns.Pattern) {
	shingle := p.Data[:ShingleLen]
	if m.foldedProbe && !p.Nocase {
		shingle = patterns.Fold(shingle)
	}
	var h [numHashes]uint32
	shingleHash(shingle, &h, m.bloom.Mask())
	m.longIDs = append(m.longIDs, p.ID)
	m.longBits = append(m.longBits, h)
	for _, bit := range h {
		m.bloom.Set(bit)
	}
}

// shingleHash derives k filter bits from one shingle via FNV-1a plus two
// cheap multiplicative remixes (the probe is the per-byte hot path, so
// hashing must stay a handful of instructions).
func shingleHash(s []byte, out *[numHashes]uint32, mask uint32) {
	const prime = 16777619
	h1 := uint32(2166136261)
	for _, b := range s {
		h1 = (h1 ^ uint32(b)) * prime
	}
	h2 := h1*bitarr.MulHashConst + 0x9E3779B9
	h3 := h2*bitarr.MulHashConst + 0x85EBCA6B
	out[0] = h1 & mask
	out[1] = h2 & mask
	out[2] = h3 & mask
}

// BloomSizeBytes returns the Bloom filter's footprint.
func (m *Matcher) BloomSizeBytes() int { return m.bloom.SizeBytes() }

// BloomFillRatio returns the fraction of set bits (drives the false
// positive rate ~ fill^k).
func (m *Matcher) BloomFillRatio() float64 { return m.bloom.FillRatio() }

// Scan reports every occurrence of every pattern in input.
func (m *Matcher) Scan(input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	m.scan(input, c, emit, nil)
}

var _ engine.Engine = (*Matcher)(nil)

// NewScratch returns nil: FFBF keeps no mutable scan state
// (engine.Engine).
func (m *Matcher) NewScratch() engine.Scratch { return nil }

// ScanScratch scans input, ignoring scr (engine.Engine).
func (m *Matcher) ScanScratch(_ engine.Scratch, input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	m.Scan(input, c, emit)
}

// ScanFeedForward scans and additionally records the Bloom bits the
// input touched, enabling the feed-forward pattern-set reduction.
func (m *Matcher) ScanFeedForward(input []byte, c *metrics.Counters, emit patterns.EmitFunc) *FeedForward {
	ff := &FeedForward{touched: bitarr.New(m.log2bits), m: m}
	m.scan(input, c, emit, ff)
	return ff
}

func (m *Matcher) scan(input []byte, c *metrics.Counters, emit patterns.EmitFunc, ff *FeedForward) {
	if c != nil {
		c.BytesScanned += uint64(len(input))
	}
	n := len(input)
	var window [ShingleLen]byte
	var h [numHashes]uint32
	for i := 0; i < n; i++ {
		if m.hasShort {
			if i+1 < n {
				idx := bitarr.Index2(input[i], input[i+1])
				if c != nil {
					c.Filter1Probes++
				}
				if m.shortFilter.Test(idx) {
					if c != nil {
						c.ShortCandidates++
					}
					m.shortVerify.VerifyShortAt(input, i, c, emit)
					if i+4 <= n {
						// Mid-length patterns (4..7 B) live in the short
						// class here but verify through the 4-byte table.
						m.shortVerify.VerifyLongAt(input, i, c, emit)
					}
				}
			} else if m.hasLen1 {
				m.shortVerify.VerifyShortAt(input, i, c, emit)
			}
		}
		if !m.hasLong || i+ShingleLen > n {
			continue
		}
		probe := input[i : i+ShingleLen]
		if m.foldedProbe {
			for j := 0; j < ShingleLen; j++ {
				window[j] = patterns.FoldByte(input[i+j])
			}
			probe = window[:]
		}
		shingleHash(probe, &h, m.bloom.Mask())
		if c != nil {
			c.Filter2Probes++
		}
		hit := true
		for _, bit := range h {
			if !m.bloom.Test(bit) {
				hit = false
				break
			}
		}
		if !hit {
			continue
		}
		if ff != nil {
			for _, bit := range h {
				ff.touched.Set(bit)
			}
		}
		if c != nil {
			c.LongCandidates++
		}
		m.longVerify.VerifyLongAt(input, i, c, emit)
	}
}

// FeedForward is the pattern-set reduction state of one scan.
type FeedForward struct {
	touched *bitarr.BitArray
	m       *Matcher
}

// PossiblePatterns returns the IDs of long patterns whose every Bloom
// bit was touched by the scanned input — the reduced set FFBF's exact
// phase would run with. Patterns outside this set provably do not occur
// in the input (no false negatives).
func (f *FeedForward) PossiblePatterns() []int32 {
	var out []int32
	for i, bits := range f.m.longBits {
		ok := true
		for _, b := range bits {
			if !f.touched.Test(b) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, f.m.longIDs[i])
		}
	}
	return out
}

// ReductionRatio returns |possible| / |long patterns| for the scan, the
// headline feed-forward statistic (smaller is better).
func (f *FeedForward) ReductionRatio() float64 {
	if len(f.m.longIDs) == 0 {
		return 0
	}
	return float64(len(f.PossiblePatterns())) / float64(len(f.m.longIDs))
}
