package ffbf

import (
	"math/bits"

	"vpatch/internal/bitarr"
	"vpatch/internal/dbfmt"
	"vpatch/internal/engine"
	"vpatch/internal/hashtab"
	"vpatch/internal/patterns"
)

// Compiled-database serialization for FFBF: the Bloom filter, the
// short-pattern direct filter, both verifiers, and the per-pattern
// Bloom bit lists that power the feed-forward reduction.

var _ engine.DBCodec = (*Matcher)(nil)

// EncodeCompiled appends the matcher's compiled state (engine.DBCodec).
func (m *Matcher) EncodeCompiled(e *dbfmt.Encoder) {
	e.Bool(m.foldedProbe)
	e.Bool(m.hasShort)
	e.Bool(m.hasLong)
	e.Bool(m.hasLen1)
	m.bloom.Encode(e)
	m.shortFilter.BitArray.Encode(e)
	m.longVerify.Encode(e)
	m.shortVerify.Encode(e)
	e.Int32s(m.longIDs)
	flat := make([]uint32, 0, len(m.longBits)*numHashes)
	for _, h := range m.longBits {
		flat = append(flat, h[0], h[1], h[2])
	}
	e.Uint32s(flat)
}

// Decode restores an FFBF engine over set.
func Decode(d *dbfmt.Decoder, set *patterns.Set) (*Matcher, error) {
	m := &Matcher{set: set}
	nPat := int32(set.Len())
	m.foldedProbe = d.Bool()
	m.hasShort = d.Bool()
	m.hasLong = d.Bool()
	m.hasLen1 = d.Bool()
	m.bloom = bitarr.DecodeBitArray(d)
	sf := bitarr.DecodeDirectFilter16(d)
	m.longVerify = hashtab.DecodeVerifier(d, set)
	m.shortVerify = hashtab.DecodeVerifier(d, set)
	m.longIDs = d.Int32s()
	flat := d.Uint32s()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	m.shortFilter = sf
	m.log2bits = uint(bits.Len32(m.bloom.Mask()))
	for _, id := range m.longIDs {
		if id < 0 || id >= nPat {
			d.Fail("long pattern id %d out of range [0,%d)", id, nPat)
			return nil, d.Err()
		}
	}
	if len(flat) != len(m.longIDs)*numHashes {
		d.Fail("bloom bit list has %d entries, want %d", len(flat), len(m.longIDs)*numHashes)
		return nil, d.Err()
	}
	m.longBits = make([][numHashes]uint32, len(m.longIDs))
	for i := range m.longBits {
		m.longBits[i] = [numHashes]uint32{flat[i*3], flat[i*3+1], flat[i*3+2]}
	}
	return m, nil
}

// MemoryFootprint reports resident bytes of the compiled state
// (engine.Sizer).
func (m *Matcher) MemoryFootprint() int {
	return m.bloom.SizeBytes() + m.shortFilter.SizeBytes() +
		m.longVerify.MemoryFootprint() + m.shortVerify.MemoryFootprint() +
		len(m.longIDs)*4 + len(m.longBits)*numHashes*4
}
