package ffbf

import (
	"math/rand"
	"testing"

	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

func scan(m *Matcher, input []byte) []patterns.Match {
	var out []patterns.Match
	m.Scan(input, nil, func(mm patterns.Match) { out = append(out, mm) })
	return out
}

func checkAgainstNaive(t *testing.T, set *patterns.Set, input []byte) {
	t.Helper()
	got := scan(Build(set, Options{}), input)
	want := patterns.FindAllNaive(set, input)
	if !patterns.EqualMatches(got, want) {
		t.Fatalf("FFBF disagrees with naive: got %d matches, want %d", len(got), len(want))
	}
}

func TestBasicLongPatterns(t *testing.T) {
	checkAgainstNaive(t, patterns.FromStrings("longpattern", "evilpayload!"),
		[]byte("a longpattern and an evilpayload! and longpatter"))
}

func TestAllLengthClasses(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte{0x91}, false, patterns.ProtoGeneric)       // 1 B
	set.Add([]byte("ab"), false, patterns.ProtoGeneric)       // 2 B
	set.Add([]byte("xyz"), false, patterns.ProtoGeneric)      // 3 B
	set.Add([]byte("midl"), false, patterns.ProtoGeneric)     // 4 B (mid class)
	set.Add([]byte("sevenby"), false, patterns.ProtoGeneric)  // 7 B (mid class)
	set.Add([]byte("eightbyt"), false, patterns.ProtoGeneric) // 8 B (shingle class)
	set.Add([]byte("longerpattern"), false, patterns.ProtoGeneric)
	input := append([]byte("ab xyz midl sevenby eightbyt longerpattern midlab"), 0x91, 0x91)
	checkAgainstNaive(t, set, input)
}

func TestMidLengthNotShadowedByLong(t *testing.T) {
	// 4-7 B patterns sharing a 4-byte prefix with >= 8 B patterns must
	// verify exactly once through their own verifier.
	set := patterns.FromStrings("atta", "attackers")
	checkAgainstNaive(t, set, []byte("attack attackers atta"))
}

func TestNocaseMixes(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte("CaseLessLong"), true, patterns.ProtoHTTP)
	set.Add([]byte("ExactCaseLong"), false, patterns.ProtoHTTP)
	set.Add([]byte("GeT"), true, patterns.ProtoHTTP)
	input := []byte("caselesslong CASELESSLONG ExactCaseLong exactcaselong GET get")
	checkAgainstNaive(t, set, input)
}

func TestPureCaseSensitiveUsesRawProbe(t *testing.T) {
	m := Build(patterns.FromStrings("RawProbes!"), Options{})
	if m.foldedProbe {
		t.Fatal("case-sensitive-only set must not fold probes")
	}
	m2 := Build(func() *patterns.Set {
		s := patterns.NewSet()
		s.Add([]byte("FoldedOne!"), true, patterns.ProtoGeneric)
		return s
	}(), Options{})
	if !m2.foldedProbe {
		t.Fatal("nocase long pattern must enable folded probes")
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	set := patterns.FromStrings("abcdefghij", "xy")
	for size := 0; size < 15; size++ {
		input := make([]byte, size)
		for i := range input {
			input[i] = byte('a' + i%5)
		}
		checkAgainstNaive(t, set, input)
	}
}

func TestBloomSizing(t *testing.T) {
	def := Build(patterns.FromStrings("abcdefgh"), Options{})
	if def.BloomSizeBytes() != 32<<10 {
		t.Fatalf("default bloom %d bytes, want 32 KB", def.BloomSizeBytes())
	}
	small := Build(patterns.FromStrings("abcdefgh"), Options{Log2Bits: 12})
	if small.BloomSizeBytes() != 512 {
		t.Fatalf("2^12-bit bloom %d bytes", small.BloomSizeBytes())
	}
}

func TestBloomFillRatioReasonable(t *testing.T) {
	m := Build(patterns.GenerateS1(1), Options{})
	fill := m.BloomFillRatio()
	// ~2000 long patterns x 3 bits into 2^18 bits => ~2.3% fill.
	if fill <= 0 || fill > 0.1 {
		t.Fatalf("bloom fill %.4f out of expected range", fill)
	}
}

func TestRandomAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		set := patterns.NewSet()
		for i := 0; i < 1+rng.Intn(12); i++ {
			l := 1 + rng.Intn(12)
			p := make([]byte, l)
			for j := range p {
				p[j] = byte('a' + rng.Intn(3))
			}
			set.Add(p, rng.Intn(5) == 0, patterns.ProtoGeneric)
		}
		input := make([]byte, 300)
		for j := range input {
			input[j] = byte('a' + rng.Intn(3))
		}
		checkAgainstNaive(t, set, input)
	}
}

func TestRealisticTraffic(t *testing.T) {
	set := patterns.GenerateS1(17).Subset(80, 4)
	input := traffic.Synthesize(traffic.ISCXDay2, 32<<10, 6, set)
	checkAgainstNaive(t, set, input)
}

func TestFeedForwardSoundness(t *testing.T) {
	// Every long pattern that actually occurs must be in the possible
	// set (no false negatives in the reduction).
	set := patterns.FromStrings("occursinthetext", "neverpresent01", "alsooccurs99")
	input := []byte("xx occursinthetext yy alsooccurs99 zz")
	m := Build(set, Options{})
	ff := m.ScanFeedForward(input, nil, nil)
	possible := map[int32]bool{}
	for _, id := range ff.PossiblePatterns() {
		possible[id] = true
	}
	for _, want := range patterns.FindAllNaive(set, input) {
		if !possible[want.PatternID] {
			t.Fatalf("occurring pattern %d missing from possible set", want.PatternID)
		}
	}
}

func TestFeedForwardReduces(t *testing.T) {
	// On traffic that contains few patterns, the possible set must be a
	// small fraction of the full set.
	set := patterns.GenerateS1(23)
	input := traffic.Random(128<<10, 9)
	m := Build(set, Options{})
	ff := m.ScanFeedForward(input, nil, nil)
	if r := ff.ReductionRatio(); r > 0.5 {
		t.Fatalf("feed-forward kept %.1f%% of patterns on random input", r*100)
	}
}

func TestFeedForwardEmptyLongSet(t *testing.T) {
	m := Build(patterns.FromStrings("ab"), Options{})
	ff := m.ScanFeedForward([]byte("abab"), nil, nil)
	if ff.ReductionRatio() != 0 || len(ff.PossiblePatterns()) != 0 {
		t.Fatal("no long patterns must yield empty reduction")
	}
}

func TestCounters(t *testing.T) {
	set := patterns.FromStrings("bloomhit8", "ab")
	m := Build(set, Options{})
	var c metrics.Counters
	m.Scan([]byte("xx bloomhit8 ab xx"), &c, nil)
	if c.Filter2Probes == 0 {
		t.Fatal("bloom probes not counted")
	}
	if c.Matches != 2 {
		t.Fatalf("Matches = %d, want 2", c.Matches)
	}
	if c.LongCandidates == 0 || c.ShortCandidates == 0 {
		t.Fatalf("candidates not counted: %+v", c)
	}
}

func TestFilteringSelectivityOnRandom(t *testing.T) {
	set := patterns.GenerateS1(1).WebSubset()
	m := Build(set, Options{})
	var c metrics.Counters
	m.Scan(traffic.Random(128<<10, 5), &c, nil)
	longRate := float64(c.LongCandidates) / float64(c.BytesScanned)
	if longRate > 0.01 {
		t.Fatalf("bloom passes %.4f of random positions; should be rare", longRate)
	}
}

func BenchmarkFFBF2KRealistic(b *testing.B) {
	set := patterns.GenerateS1(1).WebSubset()
	m := Build(set, Options{})
	input := traffic.Synthesize(traffic.ISCXDay2, 1<<20, 1, set)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scan(input, nil, nil)
	}
}
