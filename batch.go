package vpatch

import (
	"vpatch/internal/engine"
	"vpatch/internal/patterns"
)

// Batch scanning: many buffers per call. Real NIDS traffic is
// overwhelmingly small packets, and scanning them one Scan call at a
// time leaves the vectorized filtering round with mostly-empty lanes
// and per-call setup dominating (the small-input weakness the paper's
// Fig. 5b exposes). ScanBatch hands the engine a whole batch: V-PATCH
// runs its native lane-per-packet filtering round — each vector lane
// walks a different buffer, with lane refill from the pending queue, so
// one gather serves W packets and occupancy stays near 100% regardless
// of packet size — while every other algorithm scans the batch through
// an equivalent per-buffer loop. Per-buffer match semantics are
// identical to Scan on that buffer alone, for every algorithm.

// BatchEmitFunc receives matches during a batch scan: buf is the index
// within the batch of the buffer the match occurred in, and the match's
// Pos is relative to that buffer. nil means count-only.
type BatchEmitFunc = engine.BatchEmitFunc

// ScanBatch scans every buffer of inputs, reporting each match with its
// buffer index. c and emit may be nil; counters accumulate across the
// whole batch (BatchLaneFrac then reports the batched lane occupancy).
// Like Scan, a Session must not be used from two goroutines at once;
// distinct Sessions over one Engine batch-scan concurrently.
func (s *Session) ScanBatch(inputs [][]byte, c *Counters, emit BatchEmitFunc) {
	engine.ScanBatch(s.eng.eng, s.scratch, inputs, c, emit)
}

// ScanBatch scans every buffer of inputs, reporting each match with its
// buffer index. Safe to call from any goroutine (scratch comes from the
// internal pool); concurrent callers must pass distinct (or nil)
// Counters. Hot loops should prefer a per-goroutine Session.
func (e *Engine) ScanBatch(inputs [][]byte, c *Counters, emit BatchEmitFunc) {
	s, _ := e.sessions.Get().(*Session)
	if s == nil {
		s = e.NewSession()
	}
	s.ScanBatch(inputs, c, emit)
	e.sessions.Put(s)
}

// FindAllBatch scans every buffer of inputs and returns one match slice
// per buffer, each sorted by (offset, pattern ID) — buffer by buffer
// identical to FindAll. Safe for concurrent use like ScanBatch.
func (e *Engine) FindAllBatch(inputs [][]byte) [][]Match {
	out := make([][]Match, len(inputs))
	e.ScanBatch(inputs, nil, func(buf int, m Match) {
		out[buf] = append(out[buf], m)
	})
	for _, ms := range out {
		patterns.SortMatches(ms)
	}
	return out
}

// FindAllBatch is a convenience helper: compile-and-batch-scan in one
// call. For repeated batches, compile once with Compile instead.
func FindAllBatch(set *PatternSet, inputs [][]byte, opt Options) ([][]Match, error) {
	e, err := Compile(set, opt)
	if err != nil {
		return nil, err
	}
	return e.FindAllBatch(inputs), nil
}

// FindAllBatchParallel scans many independent buffers with several
// workers pulling batches of buffers from a shared queue — the
// many-small-streams deployment (per-packet or per-flow work), where a
// shared queue load-balances skewed buffer sizes automatically. The
// result is identical to FindAllBatch. workers <= 0 selects GOMAXPROCS.
func (e *Engine) FindAllBatchParallel(inputs [][]byte, workers int) [][]Match {
	workers = clampWorkers(workers, len(inputs))
	if workers <= 1 {
		return e.FindAllBatch(inputs)
	}
	out := make([][]Match, len(inputs))
	sessions := make([]*Session, workers)
	pullBatches(len(inputs), workers, parallelBufferPull, func(w, lo, hi int) {
		if sessions[w] == nil {
			sessions[w] = e.NewSession()
		}
		// Workers write disjoint out[lo:hi] slots: no locking.
		sessions[w].ScanBatch(inputs[lo:hi], nil, func(buf int, m Match) {
			out[lo+buf] = append(out[lo+buf], m)
		})
	})
	for _, ms := range out {
		patterns.SortMatches(ms)
	}
	return out
}
