package vpatch

import (
	"bytes"
	"math/rand"
	"testing"

	"vpatch/internal/dbfmt"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

var dbAlgorithms = []Algorithm{
	AlgoVPatch, AlgoSPatch, AlgoDFC, AlgoVectorDFC,
	AlgoAhoCorasick, AlgoWuManber, AlgoFFBF,
}

// randomSet builds a pattern set with the shapes that exercise every
// serialization path: 1-byte patterns, short (2-3 B), mid, long,
// nocase variants, binary bytes, several protocols.
func randomSet(rng *rand.Rand, n int) *PatternSet {
	set := NewPatternSet()
	protos := []Protocol{ProtoGeneric, ProtoHTTP, ProtoDNS, ProtoFTP, ProtoSMTP}
	for set.Len() < n {
		ln := 1 + rng.Intn(24)
		if rng.Intn(4) == 0 {
			ln = 1 + rng.Intn(3) // force short-class coverage
		}
		data := make([]byte, ln)
		for i := range data {
			if rng.Intn(5) == 0 {
				data[i] = byte(rng.Intn(256)) // binary
			} else {
				data[i] = byte('A' + rng.Intn(52))
			}
		}
		set.Add(data, rng.Intn(3) == 0, protos[rng.Intn(len(protos))])
	}
	return set
}

// TestDBRoundTripProperty is the round-trip property of the compiled
// database format: compile → serialize → deserialize must produce an
// engine whose Scan and ScanBatch output is match-identical to the
// fresh engine, across all seven algorithms and randomized pattern
// sets.
func TestDBRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4; trial++ {
		set := randomSet(rng, 40+trial*60)
		input := traffic.Synthesize(traffic.ISCXDay2, 48<<10, int64(trial+9), set)
		// A batch of small buffers slicing the same traffic.
		var batch [][]byte
		for off := 0; off < len(input); {
			n := 37 + rng.Intn(1400)
			if off+n > len(input) {
				n = len(input) - off
			}
			batch = append(batch, input[off:off+n])
			off += n
		}
		for _, alg := range dbAlgorithms {
			fresh, err := Compile(set, Options{Algorithm: alg})
			if err != nil {
				t.Fatalf("trial %d %s: Compile: %v", trial, alg, err)
			}
			blob, err := fresh.Serialize()
			if err != nil {
				t.Fatalf("trial %d %s: Serialize: %v", trial, alg, err)
			}
			loaded, err := Deserialize(blob)
			if err != nil {
				t.Fatalf("trial %d %s: Deserialize: %v", trial, alg, err)
			}
			if loaded.Algorithm() != alg {
				t.Fatalf("trial %d %s: loaded algorithm %s", trial, alg, loaded.Algorithm())
			}

			want := fresh.FindAll(input)
			got := loaded.FindAll(input)
			if !patterns.EqualMatches(want, got) {
				t.Errorf("trial %d %s: Scan mismatch: %d fresh vs %d loaded matches",
					trial, alg, len(want), len(got))
			}

			wantB := fresh.FindAllBatch(batch)
			gotB := loaded.FindAllBatch(batch)
			for i := range wantB {
				if !patterns.EqualMatches(wantB[i], gotB[i]) {
					t.Errorf("trial %d %s: ScanBatch buffer %d mismatch", trial, alg, i)
					break
				}
			}

			// A session over the loaded engine works like any other.
			s := loaded.NewSession()
			n := 0
			s.Scan(input, nil, func(Match) { n++ })
			if n != len(want) {
				t.Errorf("trial %d %s: session scan found %d, want %d", trial, alg, n, len(want))
			}
		}
	}
}

// TestDBRoundTripSecondGeneration checks serialize(deserialize(x)) ==
// x: the loaded engine re-serializes to the identical blob, so
// databases are stable across load/save cycles.
func TestDBRoundTripSecondGeneration(t *testing.T) {
	set := randomSet(rand.New(rand.NewSource(7)), 80)
	for _, alg := range dbAlgorithms {
		fresh, err := Compile(set, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%s: Compile: %v", alg, err)
		}
		blob1, err := fresh.Serialize()
		if err != nil {
			t.Fatalf("%s: Serialize: %v", alg, err)
		}
		loaded, err := Deserialize(blob1)
		if err != nil {
			t.Fatalf("%s: Deserialize: %v", alg, err)
		}
		blob2, err := loaded.Serialize()
		if err != nil {
			t.Fatalf("%s: re-Serialize: %v", alg, err)
		}
		if !bytes.Equal(blob1, blob2) {
			t.Errorf("%s: re-serialized database differs (%d vs %d bytes)", alg, len(blob1), len(blob2))
		}
	}
}

// TestDBWriteToReadFrom exercises the io.Writer/io.Reader surface.
func TestDBWriteToReadFrom(t *testing.T) {
	set := PatternSetFromStrings("attack", "GET /", "xx")
	eng, err := Compile(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := eng.WriteTo(&buf)
	if err != nil || n != int64(buf.Len()) {
		t.Fatalf("WriteTo: n=%d err=%v (buffered %d)", n, err, buf.Len())
	}
	loaded, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	in := []byte("a GET /attack xx")
	if !patterns.EqualMatches(eng.FindAll(in), loaded.FindAll(in)) {
		t.Error("ReadFrom engine mismatch")
	}
}

// TestDeserializeRejects covers the explicit failure modes: wrong
// magic, truncations, bit flips (CRC), digest mismatch, wrong kind.
func TestDeserializeRejects(t *testing.T) {
	set := randomSet(rand.New(rand.NewSource(3)), 30)
	eng, err := Compile(set, Options{Algorithm: AlgoVPatch})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := eng.Serialize()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Deserialize(nil); err == nil {
		t.Error("nil input: want error")
	}
	for _, cut := range []int{1, len(blob) / 3, len(blob) - 1} {
		if _, err := Deserialize(blob[:cut]); err == nil {
			t.Errorf("truncation at %d: want error", cut)
		}
	}
	for i := 0; i < len(blob); i += len(blob)/97 + 1 {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x10
		if _, err := Deserialize(bad); err == nil {
			t.Errorf("bit flip at %d: want error", i)
		}
	}
}

// TestDeserializeRejectsCraftedCounts is the regression test for
// varint counts that wrap negative when cast to int: a CRC-valid
// database whose per-state output counts sum to a plausible total via
// a huge varint must be rejected, not panic with a slice-bounds error.
func TestDeserializeRejectsCraftedCounts(t *testing.T) {
	set := PatternSetFromStrings("abcdef", "ghijkl")
	var pe dbfmt.Encoder
	patterns.EncodeSet(&pe, set)

	// AC engine section: folded=false, states=2, output counts
	// [5, 2^64-2] (int(-2), so 5 + -2 == 3 matches the flat length),
	// then 3 flat IDs.
	var ee dbfmt.Encoder
	ee.Bool(false)
	ee.Uvarint(2)
	ee.Uvarint(5)
	ee.Uvarint(0xFFFFFFFFFFFFFFFE)
	ee.Int32s([]int32{0, 1, 0})
	ee.U8(0) // repFull (never reached)

	blob := dbfmt.Encode(
		dbfmt.Header{Kind: dbfmt.KindEngine, Algorithm: uint8(AlgoAhoCorasick), Digest: set.Digest()},
		[]dbfmt.Section{
			{Tag: dbfmt.TagPatterns, Data: pe.Bytes()},
			{Tag: dbfmt.TagEngine, Data: ee.Bytes()},
		})
	if _, err := Deserialize(blob); err == nil {
		t.Fatal("crafted wrapping count: want error")
	}
}

// TestInfo checks the Info surface across a vectorized and a scalar
// engine.
func TestInfo(t *testing.T) {
	set := PatternSetFromStrings("alpha", "bet", "c", "longestpattern")
	v, err := Compile(set, Options{Algorithm: AlgoVPatch})
	if err != nil {
		t.Fatal(err)
	}
	inf := v.Info()
	if inf.Algorithm != AlgoVPatch || inf.Patterns != 4 || inf.MaxPatternLen != 14 {
		t.Errorf("V-PATCH info = %+v", inf)
	}
	if inf.VectorWidth != 8 {
		t.Errorf("V-PATCH width = %d, want 8", inf.VectorWidth)
	}
	if inf.MemoryBytes <= 0 || inf.SerializedBytes <= 0 {
		t.Errorf("V-PATCH sizes = %+v", inf)
	}
	blob, _ := v.Serialize()
	if inf.SerializedBytes != len(blob) {
		t.Errorf("SerializedBytes %d, Serialize len %d", inf.SerializedBytes, len(blob))
	}
	if s := inf.String(); s == "" {
		t.Error("empty Info string")
	}

	ac, err := Compile(set, Options{Algorithm: AlgoAhoCorasick})
	if err != nil {
		t.Fatal(err)
	}
	if inf := ac.Info(); inf.VectorWidth != 0 || inf.MemoryBytes <= 0 {
		t.Errorf("AC info = %+v", inf)
	}
}

// FuzzDeserialize feeds arbitrary bytes to the database loader: any
// input must produce an engine or an error — never a panic and never
// an allocation beyond the input's own size class. Seeds include valid
// databases of several algorithms so mutations explore deep decode
// paths.
func FuzzDeserialize(f *testing.F) {
	set := PatternSetFromStrings("fuzz", "GE", "x", "pattern-long-enough")
	setN := randomSet(rand.New(rand.NewSource(11)), 25)
	for _, alg := range []Algorithm{AlgoVPatch, AlgoAhoCorasick, AlgoWuManber, AlgoFFBF} {
		for _, s := range []*PatternSet{set, setN} {
			if eng, err := Compile(s, Options{Algorithm: alg}); err == nil {
				if blob, err := eng.Serialize(); err == nil {
					f.Add(blob)
				}
			}
		}
	}
	// Seed the engine-section corpus with each algorithm's real encoded
	// state, so mutations start from deep inside the decoders.
	for _, alg := range dbAlgorithms {
		if eng, err := Compile(set, Options{Algorithm: alg}); err == nil {
			if blob, err := eng.Serialize(); err == nil {
				if _, secs, err := dbfmt.Decode(blob); err == nil {
					f.Add(dbfmt.FindSection(secs, dbfmt.TagEngine))
				}
			}
		}
	}
	f.Add([]byte("VPDB"))
	f.Add([]byte{})

	// A fixed valid pattern section + digest: re-wrapping fuzz data as
	// the engine section with a fresh CRC drives arbitrary bytes past
	// the container checks into every algorithm's state decoder.
	var pe dbfmt.Encoder
	patterns.EncodeSet(&pe, set)
	psec := pe.Bytes()
	digest := set.Digest()
	scanProbe := []byte("GET /fuzz pattern-long-enough xx\x00\x01")

	f.Fuzz(func(t *testing.T, data []byte) {
		if eng, err := Deserialize(data); err == nil {
			// A database that decodes must also scan without panicking.
			eng.Scan(scanProbe, nil, func(Match) {})
		}
		for alg := AlgoVPatch; alg <= AlgoFFBF; alg++ {
			width := uint8(0)
			if alg == AlgoVPatch || alg == AlgoVectorDFC {
				width = 8
			}
			blob := dbfmt.Encode(
				dbfmt.Header{Kind: dbfmt.KindEngine, Algorithm: uint8(alg), Width: width, Digest: digest},
				[]dbfmt.Section{
					{Tag: dbfmt.TagPatterns, Data: psec},
					{Tag: dbfmt.TagEngine, Data: data},
				})
			if eng, err := Deserialize(blob); err == nil {
				eng.Scan(scanProbe, nil, func(Match) {})
			}
		}
	})
}
